//! The discrete-event engine: a virtual clock plus a cancellable,
//! deterministically ordered pending-event queue.
//!
//! This is the substrate that replaces OMNeT++ in the reproduction. It
//! is deliberately minimal: it knows nothing about networks or nodes.
//! Higher layers schedule opaque messages of type `M` and interpret
//! them when they fire.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle identifying a scheduled entry, usable to cancel it.
///
/// Handles are unique per [`Engine`] instance and are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

#[derive(PartialEq, Eq)]
struct Slot {
    at: SimTime,
    seq: u64,
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Primary: time. Secondary: insertion order, so that events
        // scheduled earlier for the same instant fire first (stable
        // FIFO semantics, required for determinism).
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events carry an arbitrary payload `M`. Two events scheduled for the
/// same instant fire in the order they were scheduled. Cancellation is
/// lazy: cancelled entries are skipped when popped, which keeps
/// `cancel` O(1).
///
/// # Examples
///
/// ```
/// use eps_sim::{Engine, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimTime::from_millis(10), "b");
/// engine.schedule(SimTime::from_millis(5), "a");
/// let (t, msg) = engine.pop().unwrap();
/// assert_eq!((t.as_nanos(), msg), (5_000_000, "a"));
/// assert_eq!(engine.pop().unwrap().1, "b");
/// assert!(engine.pop().is_none());
/// ```
pub struct Engine<M> {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Reverse<Slot>>,
    payloads: std::collections::HashMap<u64, M>,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules `msg` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, msg: M) -> EventId {
        self.schedule_at(self.now + delay, msg)
    }

    /// Schedules `msg` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Engine::now`]); the
    /// kernel never reorders time.
    pub fn schedule_at(&mut self, at: SimTime, msg: M) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Slot { at, seq }));
        self.payloads.insert(seq, msg);
        EventId(seq)
    }

    /// Cancels a pending event. Returns the payload if the event was
    /// still pending, `None` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> Option<M> {
        let removed = self.payloads.remove(&id.0);
        if removed.is_some() {
            self.cancelled_total += 1;
        }
        removed
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(slot)| slot.at)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, M)> {
        self.skip_cancelled();
        let Reverse(slot) = self.heap.pop()?;
        let msg = self
            .payloads
            .remove(&slot.seq)
            .expect("pending slot must have a payload");
        debug_assert!(slot.at >= self.now, "event queue went backwards");
        self.now = slot.at;
        Some((slot.at, msg))
    }

    /// Like [`Engine::pop`] but only if the next event fires at or
    /// before `deadline`; otherwise leaves the queue untouched and
    /// advances the clock to `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, M)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn skip_cancelled(&mut self) {
        while let Some(Reverse(slot)) = self.heap.peek() {
            if self.payloads.contains_key(&slot.seq) {
                break;
            }
            self.heap.pop();
        }
    }
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.payloads.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(30), 3u32);
        e.schedule_at(SimTime::from_millis(10), 1);
        e.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut e = Engine::new();
        let t = SimTime::from_millis(5);
        for i in 0..100u32 {
            e.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(1), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn relative_schedule_uses_current_time() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), "first");
        e.pop();
        e.schedule(SimTime::from_secs(3), "second");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn cancel_removes_event() {
        let mut e = Engine::new();
        let id = e.schedule(SimTime::from_secs(1), "x");
        assert_eq!(e.cancel(id), Some("x"));
        assert_eq!(e.cancel(id), None);
        assert!(e.pop().is_none());
        assert_eq!(e.cancelled_total(), 1);
    }

    #[test]
    fn cancelled_events_are_skipped_at_head() {
        let mut e = Engine::new();
        let id = e.schedule_at(SimTime::from_millis(1), 1u8);
        e.schedule_at(SimTime::from_millis(2), 2);
        e.cancel(id);
        assert_eq!(e.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(e.pop().unwrap().1, 2);
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(10), ());
        assert!(e.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert!(e.pop_until(SimTime::from_secs(10)).is_some());
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), ());
        e.pop();
        e.schedule_at(SimTime::from_millis(1), ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut e = Engine::new();
        assert!(e.is_empty());
        let a = e.schedule(SimTime::from_secs(1), ());
        e.schedule(SimTime::from_secs(2), ());
        assert_eq!(e.len(), 2);
        e.cancel(a);
        assert_eq!(e.len(), 1);
        e.pop();
        assert!(e.is_empty());
    }
}
