//! The discrete-event engine: a virtual clock plus a cancellable,
//! deterministically ordered pending-event queue.
//!
//! This is the substrate that replaces OMNeT++ in the reproduction. It
//! is deliberately minimal: it knows nothing about networks or nodes.
//! Higher layers schedule opaque messages of type `M` and interpret
//! them when they fire.
//!
//! # Performance model
//!
//! Payloads live *inline* in the heap slots, so scheduling an event is
//! one heap push and popping it is one heap pop — there is no side
//! `HashMap` paying a hash insert plus a hash remove per event.
//! Cancellation is lazy: [`Engine::cancel`] flips one bit in a dense
//! per-sequence bitmap (sequences are allocated consecutively, so the
//! bitmap is an O(1) "tombstone set" with no hashing at all) and
//! tombstoned slots are dropped when they surface at the heap head.
//! The head is never left tombstoned, which is what lets
//! [`Engine::peek_time`] take `&self`.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle identifying a scheduled entry, usable to cancel it.
///
/// Handles are unique per [`Engine`] instance and are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Slot<M> {
    at: SimTime,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Slot<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Slot<M> {}

impl<M> Ord for Slot<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so `BinaryHeap` (a max-heap) acts as a min-heap.
        // Primary: time. Secondary: insertion order, so that events
        // scheduled earlier for the same instant fire first (stable
        // FIFO semantics, required for determinism).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<M> PartialOrd for Slot<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events carry an arbitrary payload `M`, stored inline in the queue.
/// Two events scheduled for the same instant fire in the order they
/// were scheduled. Cancellation is lazy and O(1): cancelled entries
/// are tombstoned in a dense bitmap and dropped when they reach the
/// head of the queue.
///
/// # Examples
///
/// ```
/// use eps_sim::{Engine, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimTime::from_millis(10), "b");
/// engine.schedule(SimTime::from_millis(5), "a");
/// let (t, msg) = engine.pop().unwrap();
/// assert_eq!((t.as_nanos(), msg), (5_000_000, "a"));
/// assert_eq!(engine.pop().unwrap().1, "b");
/// assert!(engine.pop().is_none());
/// ```
pub struct Engine<M> {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Slot<M>>,
    /// One bit per sequence number ever allocated: set once the event
    /// has fired or been cancelled.
    done: Vec<u64>,
    /// Cancelled entries still physically present in the heap.
    tombstoned: usize,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<M> Default for Engine<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Engine<M> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            done: Vec::new(),
            tombstoned: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstoned
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events cancelled before firing.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Schedules `msg` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimTime, msg: M) -> EventId {
        self.schedule_at(self.now + delay, msg)
    }

    /// Schedules `msg` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Engine::now`]); the
    /// kernel never reorders time.
    pub fn schedule_at(&mut self, at: SimTime, msg: M) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Slot { at, seq, msg });
        EventId(seq)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending, `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq || self.is_done(id.0) {
            return false;
        }
        self.mark_done(id.0);
        self.tombstoned += 1;
        self.cancelled_total += 1;
        // Keep the invariant that the heap head is live, so that
        // `peek_time` stays a borrow-only heap peek.
        self.drop_tombstoned_head();
        true
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The head is never tombstoned (see `drop_tombstoned_head`),
        // so this is a plain O(1) peek with a shared borrow.
        self.heap.peek().map(|slot| slot.at)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, M)> {
        let slot = self.heap.pop()?;
        debug_assert!(!self.is_done(slot.seq), "tombstone surfaced at head");
        self.mark_done(slot.seq);
        debug_assert!(slot.at >= self.now, "event queue went backwards");
        self.now = slot.at;
        self.drop_tombstoned_head();
        Some((slot.at, slot.msg))
    }

    /// Like [`Engine::pop`] but only if the next event fires at or
    /// before `deadline`; otherwise leaves the queue untouched and
    /// advances the clock to `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, M)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn drop_tombstoned_head(&mut self) {
        while let Some(slot) = self.heap.peek() {
            if !self.is_done(slot.seq) {
                break;
            }
            self.heap.pop();
            self.tombstoned -= 1;
        }
    }

    #[inline]
    fn is_done(&self, seq: u64) -> bool {
        self.done
            .get((seq / 64) as usize)
            .is_some_and(|word| word & (1 << (seq % 64)) != 0)
    }

    #[inline]
    fn mark_done(&mut self, seq: u64) {
        let word = (seq / 64) as usize;
        if word >= self.done.len() {
            self.done.resize(word + 1, 0);
        }
        self.done[word] |= 1 << (seq % 64);
    }
}

impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(30), 3u32);
        e.schedule_at(SimTime::from_millis(10), 1);
        e.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut e = Engine::new();
        let t = SimTime::from_millis(5);
        for i in 0..100u32 {
            e.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_secs(1), ());
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn relative_schedule_uses_current_time() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(2), "first");
        e.pop();
        e.schedule(SimTime::from_secs(3), "second");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn cancel_removes_event() {
        let mut e = Engine::new();
        let id = e.schedule(SimTime::from_secs(1), "x");
        assert!(e.cancel(id));
        assert!(!e.cancel(id));
        assert!(e.pop().is_none());
        assert_eq!(e.cancelled_total(), 1);
    }

    #[test]
    fn cancelled_events_are_skipped_at_head() {
        let mut e = Engine::new();
        let id = e.schedule_at(SimTime::from_millis(1), 1u8);
        e.schedule_at(SimTime::from_millis(2), 2);
        e.cancel(id);
        assert_eq!(e.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(e.pop().unwrap().1, 2);
    }

    #[test]
    fn cancel_of_fired_event_is_rejected() {
        let mut e = Engine::new();
        let id = e.schedule(SimTime::from_secs(1), 7u8);
        assert_eq!(e.pop().unwrap().1, 7);
        assert!(!e.cancel(id), "firing consumes the handle");
        assert_eq!(e.cancelled_total(), 0);
    }

    #[test]
    fn cancel_deep_in_queue_keeps_order_and_len() {
        let mut e = Engine::new();
        let ids: Vec<_> = (0..10u32)
            .map(|i| e.schedule_at(SimTime::from_millis(i as u64 + 1), i))
            .collect();
        // Tombstone every odd event while it is buried in the heap.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                assert!(e.cancel(*id));
            }
        }
        assert_eq!(e.len(), 5);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, m)| m)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
        assert_eq!(e.cancelled_total(), 5);
        assert!(e.is_empty());
    }

    #[test]
    fn peek_time_is_borrow_only_and_skips_tombstones() {
        let mut e = Engine::new();
        let a = e.schedule_at(SimTime::from_millis(1), 'a');
        e.schedule_at(SimTime::from_millis(5), 'b');
        e.cancel(a);
        // `peek_time` takes &self: two overlapping peeks are fine.
        let shared = &e;
        assert_eq!(shared.peek_time(), shared.peek_time());
        assert_eq!(shared.peek_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(10), ());
        assert!(e.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert!(e.pop_until(SimTime::from_secs(10)).is_some());
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_secs(1), ());
        e.pop();
        e.schedule_at(SimTime::from_millis(1), ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut e = Engine::new();
        assert!(e.is_empty());
        let a = e.schedule(SimTime::from_secs(1), ());
        e.schedule(SimTime::from_secs(2), ());
        assert_eq!(e.len(), 2);
        e.cancel(a);
        assert_eq!(e.len(), 1);
        e.pop();
        assert!(e.is_empty());
    }
}
