//! Virtual time for the simulation kernel.
//!
//! Time is kept as an integer number of nanoseconds so that simulations
//! are exactly reproducible: no floating-point accumulation error, and a
//! total order with stable tie-breaking in the event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is also used to represent durations (a point relative to
/// [`SimTime::ZERO`]); arithmetic saturates on underflow rather than
/// panicking so that defensive code such as `deadline - now` is safe.
///
/// # Examples
///
/// ```
/// use eps_sim::SimTime;
///
/// let t = SimTime::from_secs_f64(0.03);
/// assert_eq!(t.as_nanos(), 30_000_000);
/// assert!((t.as_secs_f64() - 0.03).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time in seconds: {s}");
        let ns = s * 1e9;
        assert!(ns <= u64::MAX as f64, "time out of range: {s}s");
        SimTime(ns.round() as u64)
    }

    /// Returns the time as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns [`SimTime::ZERO`] on underflow.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiplies a duration by an integer factor (saturating).
    pub fn saturating_mul(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }

    /// Scales a duration by a float factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimTime((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division of durations, yielding how many times `rhs`
    /// fits into `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_duration(self, rhs: SimTime) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0 / rhs.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(12.345678901);
        assert!((t.as_secs_f64() - 12.345678901).abs() < 1e-9);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(6);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn sub_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let t = SimTime::from_nanos(10);
        assert_eq!(t.mul_f64(1.26).as_nanos(), 13);
    }

    #[test]
    fn div_duration_counts_intervals() {
        let total = SimTime::from_secs(25);
        let step = SimTime::from_millis(30);
        assert_eq!(total.div_duration(step), 833);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_ne!(format!("{:?}", SimTime::ZERO), "");
    }
}
