//! A pending-event queue ordered by `(time, key)` instead of
//! `(time, insertion order)` — the per-shard heap of the sharded
//! (conservative parallel) runner.
//!
//! The plain [`crate::Engine`] breaks same-instant ties by insertion
//! order, which is exactly what a *sharded* simulation cannot use: two
//! events arriving at one node from different shards would fire in an
//! order that depends on how the population was partitioned. The
//! [`KeyedEngine`] instead orders same-instant events by a
//! caller-supplied key that is a pure function of the event itself
//! (e.g. `(class, destination, sender, per-sender sequence)`), so the
//! execution order is identical for every shard count — the
//! determinism backbone of the windowed barrier runner.
//!
//! Keys must be unique per instant for the order to be total; the
//! queue makes no attempt to disambiguate equal `(time, key)` pairs.

use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Slot<K, M> {
    at: SimTime,
    key: K,
    msg: M,
}

impl<K: Ord, M> PartialEq for Slot<K, M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}

impl<K: Ord, M> Eq for Slot<K, M> {}

impl<K: Ord, M> Ord for Slot<K, M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so `BinaryHeap` (a max-heap) acts as a min-heap.
        // Primary: time. Secondary: the event key, a pure function of
        // the event — never of scheduling order.
        (&other.at, &other.key).cmp(&(&self.at, &self.key))
    }
}

impl<K: Ord, M> PartialOrd for Slot<K, M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic pending-event queue with key-based tie-breaking
/// (see the module docs).
///
/// # Examples
///
/// ```
/// use eps_sim::{KeyedEngine, SimTime};
///
/// let mut q: KeyedEngine<u32, &str> = KeyedEngine::new();
/// let t = SimTime::from_millis(5);
/// q.schedule_at(t, 2, "second");
/// q.schedule_at(t, 1, "first"); // same instant, smaller key
/// assert_eq!(q.pop().unwrap().2, "first");
/// assert_eq!(q.pop().unwrap().2, "second");
/// ```
pub struct KeyedEngine<K, M> {
    now: SimTime,
    heap: BinaryHeap<Slot<K, M>>,
    processed_total: u64,
}

impl<K: Ord, M> Default for KeyedEngine<K, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, M> KeyedEngine<K, M> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        KeyedEngine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            processed_total: 0,
        }
    }

    /// The timestamp of the most recently popped event (zero before
    /// any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever popped.
    pub fn processed_total(&self) -> u64 {
        self.processed_total
    }

    /// Schedules `msg` at absolute time `at` with tie-breaking `key`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`KeyedEngine::now`]).
    pub fn schedule_at(&mut self, at: SimTime, key: K, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        self.heap.push(Slot { at, key, msg });
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|slot| slot.at)
    }

    /// Removes and returns the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, K, M)> {
        let slot = self.heap.pop()?;
        debug_assert!(slot.at >= self.now, "event queue went backwards");
        self.now = slot.at;
        self.processed_total += 1;
        Some((slot.at, slot.key, slot.msg))
    }

    /// Like [`KeyedEngine::pop`] but only if the next event fires
    /// strictly before `horizon` — the window-local drain of the
    /// barrier runner, which must not touch events at or past the next
    /// barrier. Does not advance the clock when nothing qualifies.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, K, M)> {
        match self.peek_time() {
            Some(t) if t < horizon => self.pop(),
            _ => None,
        }
    }
}

impl<K, M> std::fmt::Debug for KeyedEngine<K, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedEngine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed_total", &self.processed_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = KeyedEngine::new();
        q.schedule_at(SimTime::from_millis(30), 0u8, 3u32);
        q.schedule_at(SimTime::from_millis(10), 9, 1);
        q.schedule_at(SimTime::from_millis(20), 5, 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, m)| m)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_ties_fire_in_key_order_not_insertion_order() {
        let t = SimTime::from_millis(5);
        // Two opposite insertion orders must produce the same firing
        // order — the property the sharded runner rests on.
        let mut a = KeyedEngine::new();
        let mut b = KeyedEngine::new();
        for key in 0..50u32 {
            a.schedule_at(t, key, key);
            b.schedule_at(t, 49 - key, 49 - key);
        }
        let fa: Vec<u32> = std::iter::from_fn(|| a.pop().map(|(_, _, m)| m)).collect();
        let fb: Vec<u32> = std::iter::from_fn(|| b.pop().map(|(_, _, m)| m)).collect();
        assert_eq!(fa, fb);
        assert_eq!(fa, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_is_strict_and_leaves_clock_alone() {
        let mut q = KeyedEngine::new();
        q.schedule_at(SimTime::from_millis(10), 0u8, ());
        assert!(q.pop_before(SimTime::from_millis(10)).is_none());
        assert_eq!(q.now(), SimTime::ZERO);
        assert!(q.pop_before(SimTime::from_millis(11)).is_some());
        assert_eq!(q.now(), SimTime::from_millis(10));
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = KeyedEngine::new();
        q.schedule_at(SimTime::from_secs(1), 0u8, ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert_eq!(q.processed_total(), 1);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = KeyedEngine::new();
        q.schedule_at(SimTime::from_secs(1), 0u8, ());
        q.pop();
        q.schedule_at(SimTime::from_millis(1), 0u8, ());
    }
}
