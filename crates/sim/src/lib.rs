//! # eps-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate that replaces OMNeT++ in the
//! reproduction of *“Epidemic Algorithms for Reliable Content-Based
//! Publish-Subscribe: An Evaluation”* (Costa et al., ICDCS 2004).
//!
//! It provides exactly what the evaluation needs and nothing more:
//!
//! - [`SimTime`] — integer-nanosecond virtual time;
//! - [`Engine`] — a cancellable pending-event queue with stable FIFO
//!   tie-breaking (two events scheduled for the same instant fire in
//!   scheduling order), generic over the message type;
//! - [`KeyedEngine`] — the per-shard variant breaking same-instant
//!   ties by an event-derived key instead of insertion order, so the
//!   sharded runner's execution order is shard-count-invariant;
//! - [`Rng`] / [`RngFactory`] — an in-tree xoshiro256++ generator and
//!   named, independent, seed-stable random streams, so parameter
//!   sweeps do not perturb unrelated random choices (and the build
//!   needs no external crates);
//! - [`Summary`], [`RatioSeries`], [`quantile`] — the statistics
//!   helpers used to build the paper's delivery-rate and overhead
//!   figures.
//!
//! # Examples
//!
//! A tiny two-node ping-pong simulation:
//!
//! ```
//! use eps_sim::{Engine, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Msg { Ping, Pong }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::from_millis(1), Msg::Ping);
//! let mut log = Vec::new();
//! while let Some((t, msg)) = engine.pop() {
//!     log.push((t, format!("{msg:?}")));
//!     if msg == Msg::Ping && t < SimTime::from_millis(3) {
//!         engine.schedule(SimTime::from_millis(1), Msg::Pong);
//!         engine.schedule(SimTime::from_millis(2), Msg::Ping);
//!     }
//! }
//! assert_eq!(log.len(), 3); // Ping@1ms, Pong@2ms, Ping@3ms
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod keyed;
mod rng;
mod stats;
mod time;

pub use engine::{Engine, EventId};
pub use keyed::KeyedEngine;
pub use rng::{Rng, RngFactory, SampleRange, Zipf};
pub use stats::{quantile, RatioBin, RatioSeries, Summary};
pub use time::SimTime;
