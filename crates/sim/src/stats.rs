//! Small statistics helpers used by the metrics layer and the
//! experiment harness: online summaries and time-binned series.

use crate::time::SimTime;

/// Online (Welford) summary of a stream of `f64` samples.
///
/// # Examples
///
/// ```
/// use eps_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Computes the `q`-quantile (0.0 ..= 1.0) of a sample set using linear
/// interpolation. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any sample is NaN.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in quantile"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A ratio series binned over virtual time: each bin accumulates a
/// numerator and a denominator (e.g. events delivered / events
/// expected), and the series reports their per-bin ratio.
///
/// # Examples
///
/// ```
/// use eps_sim::{RatioSeries, SimTime};
///
/// let mut s = RatioSeries::new(SimTime::from_secs(1));
/// s.add(SimTime::from_millis(100), 3.0, 4.0);
/// s.add(SimTime::from_millis(900), 1.0, 4.0);
/// s.add(SimTime::from_millis(1500), 1.0, 1.0);
/// let bins = s.bins();
/// assert_eq!(bins.len(), 2);
/// assert!((bins[0].ratio() - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RatioSeries {
    bin_width: SimTime,
    bins: Vec<RatioBin>,
}

/// One bin of a [`RatioSeries`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RatioBin {
    /// Start of the bin in virtual time.
    pub start: SimTime,
    /// Accumulated numerator.
    pub numerator: f64,
    /// Accumulated denominator.
    pub denominator: f64,
}

impl RatioBin {
    /// The bin's ratio; 1.0 when the denominator is zero (an empty bin
    /// counts as "nothing was lost").
    pub fn ratio(&self) -> f64 {
        if self.denominator == 0.0 {
            1.0
        } else {
            self.numerator / self.denominator
        }
    }
}

impl RatioSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimTime) -> Self {
        assert!(bin_width > SimTime::ZERO, "bin width must be positive");
        RatioSeries {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> SimTime {
        self.bin_width
    }

    /// Accumulates `num`/`den` into the bin containing time `at`.
    pub fn add(&mut self, at: SimTime, num: f64, den: f64) {
        let idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if self.bins.len() <= idx {
            let w = self.bin_width;
            let old = self.bins.len();
            self.bins.resize_with(idx + 1, Default::default);
            for (i, bin) in self.bins.iter_mut().enumerate().skip(old) {
                bin.start = w.saturating_mul(i as u64);
            }
        }
        self.bins[idx].numerator += num;
        self.bins[idx].denominator += den;
    }

    /// The accumulated bins, in time order.
    pub fn bins(&self) -> &[RatioBin] {
        &self.bins
    }

    /// Overall ratio across all bins.
    pub fn total_ratio(&self) -> f64 {
        let num: f64 = self.bins.iter().map(|b| b.numerator).sum();
        let den: f64 = self.bins.iter().map(|b| b.denominator).sum();
        if den == 0.0 {
            1.0
        } else {
            num / den
        }
    }

    /// The minimum per-bin ratio over bins with a nonzero denominator,
    /// or `None` if no bin has samples. Captures the "negative spikes"
    /// the paper discusses for reconfiguration scenarios.
    pub fn min_ratio(&self) -> Option<f64> {
        self.bins
            .iter()
            .filter(|b| b.denominator > 0.0)
            .map(|b| b.ratio())
            .min_by(|a, b| a.partial_cmp(b).expect("ratio is never NaN"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..37].iter().for_each(|&x| a.record(x));
        data[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn ratio_series_bins_by_time() {
        let mut s = RatioSeries::new(SimTime::from_secs(1));
        s.add(SimTime::from_millis(2500), 1.0, 2.0);
        let bins = s.bins();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[2].start, SimTime::from_secs(2));
        assert_eq!(bins[0].ratio(), 1.0); // empty bin
        assert_eq!(bins[2].ratio(), 0.5);
    }

    #[test]
    fn ratio_series_total_and_min() {
        let mut s = RatioSeries::new(SimTime::from_secs(1));
        s.add(SimTime::from_millis(100), 8.0, 10.0);
        s.add(SimTime::from_millis(1100), 2.0, 10.0);
        assert!((s.total_ratio() - 0.5).abs() < 1e-12);
        assert!((s.min_ratio().unwrap() - 0.2).abs() < 1e-12);
    }
}
