//! Deterministic random-number streams, implemented in-tree.
//!
//! A single master seed fans out into independent, *named* streams so
//! that sweeping one simulation parameter (say, the buffer size) does
//! not perturb the random choices made by unrelated components (say,
//! the workload content). Stream derivation uses FNV-1a over the name
//! followed by SplitMix64 mixing; the generator itself is
//! xoshiro256++. All three are fixed, published algorithms with no
//! external dependency, so streams are stable across Rust releases and
//! platforms and the workspace builds with no network access.

/// A small, fast, deterministic pseudo-random generator
/// (xoshiro256++ by Blackman & Vigna), seeded via SplitMix64.
///
/// This is a concrete type on purpose: every call inlines, with no
/// trait-object dispatch on the simulation hot path.
///
/// # Examples
///
/// ```
/// use eps_sim::Rng;
///
/// let mut rng = Rng::from_seed(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(Rng::from_seed(42).next_u64(), a);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it into the
    /// 256-bit state with the SplitMix64 sequence (the seeding scheme
    /// recommended by the xoshiro authors).
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            // Each call advances by the golden-ratio increment inside
            // `splitmix64`, so step the caller-side state to match the
            // canonical SplitMix64 sequence.
            *slot = splitmix64(state);
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits of mantissa.
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.random_f64() < p
        }
    }

    /// A uniform integer in `[0, n)`, unbiased (Lemire's widening
    /// multiplication with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn random_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "random_below(0)");
        let mut m = self.next_u64() as u128 * n as u128;
        if (m as u64) < n {
            // 2^64 mod n, computed without overflow.
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = self.next_u64() as u128 * n as u128;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in a half-open range. Implemented for the
    /// integer ranges used in the simulator and for `Range<f64>`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// A uniformly chosen element of `slice`, or `None` if empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_below(slice.len() as u64) as usize])
        }
    }

    /// A uniformly chosen item of an iterator (single-pass reservoir
    /// sampling), or `None` if the iterator is empty.
    pub fn choose_iter<I: IntoIterator>(&mut self, iter: I) -> Option<I::Item> {
        let mut chosen = None;
        for (seen, item) in iter.into_iter().enumerate() {
            if seen == 0 || self.random_below(seen as u64 + 1) == 0 {
                chosen = Some(item);
            }
        }
        chosen
    }

    /// `amount` distinct indices drawn uniformly from `0..length`,
    /// in ascending order (Floyd's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample_indices(&mut self, length: usize, amount: usize) -> Vec<usize> {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        let mut picked: Vec<usize> = Vec::with_capacity(amount);
        for j in length - amount..length {
            let t = self.random_below(j as u64 + 1) as usize;
            match picked.binary_search(&t) {
                // `t` already picked: take `j` instead. `j` exceeds
                // every earlier pick, so pushing keeps `picked` sorted.
                Ok(_) => picked.push(j),
                Err(pos) => picked.insert(pos, t),
            }
        }
        picked
    }
}

/// A bounded Zipf distribution over the ranks `1..=n` with exponent
/// `s ≥ 0`: `P(k) ∝ k^−s`. `s = 0` degenerates to uniform; larger `s`
/// concentrates mass on the low ranks (the "popular" items).
///
/// Sampling uses Devroye-style rejection from the integral envelope of
/// `x^−s`, so a draw is O(1) in `n` — no per-rank tables, which is what
/// pattern universes of 10⁴–10⁵ need. Deterministic: a draw consumes
/// one uniform for the envelope plus, for ranks `> 1`, one uniform per
/// rejection test, all from the caller's [`Rng`] stream.
///
/// # Examples
///
/// ```
/// use eps_sim::{Rng, Zipf};
///
/// let zipf = Zipf::new(70, 1.2);
/// let mut rng = Rng::from_seed(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=70).contains(&rank));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// Total envelope mass: `∫₀ⁿ max(1, x)^−s dx`.
    t: f64,
}

// `n`, `s` and `t` are finite by construction (asserted in `new`), so
// the derived `PartialEq` is total on the values that can exist.
impl Eq for Zipf {}

impl Zipf {
    /// Creates the distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be ≥ 0");
        let n = n as f64;
        // ∫₁ⁿ x^−s dx, plus 1 for the [0, 1) strip of the envelope.
        let t = if (s - 1.0).abs() < 1e-12 {
            1.0 + n.ln()
        } else {
            (n.powf(1.0 - s) - s) / (1.0 - s)
        };
        Zipf { n, s, t }
    }

    /// Number of ranks `n`.
    pub fn ranks(&self) -> u64 {
        self.n as u64
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Inverse CDF of the envelope density `max(1, x)^−s / t` at
    /// envelope mass `m ∈ [0, t)`.
    fn envelope_inv(&self, m: f64) -> f64 {
        if m <= 1.0 {
            m
        } else if (self.s - 1.0).abs() < 1e-12 {
            (m - 1.0).exp()
        } else {
            (m * (1.0 - self.s) + self.s).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let x = self.envelope_inv(rng.random_f64() * self.t);
            let k = x.ceil().max(1.0).min(self.n);
            // Over [0, 1) the envelope equals the target: accept.
            if k <= 1.0 {
                return 1;
            }
            // Accept with probability (x / k)^s — the ratio of the
            // target mass at rank k to the envelope at x.
            if rng.random_f64() < (x / k).powf(self.s) {
                return k as u64;
            }
        }
    }
}

/// Ranges [`Rng::random_range`] can draw from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.random_below(span) as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.random_f64() * (self.end - self.start)
    }
}

/// Derives independent named RNG streams from one master seed.
///
/// # Examples
///
/// ```
/// use eps_sim::RngFactory;
///
/// let factory = RngFactory::new(42);
/// let mut topology = factory.stream("topology");
/// let mut workload = factory.stream("workload");
/// // Streams are deterministic...
/// let again = factory.stream("topology").next_u64();
/// assert_eq!(topology.next_u64(), again);
/// // ...and independent.
/// assert_ne!(factory.stream("topology").next_u64(), workload.next_u64());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the RNG stream with the given name. Calling twice with
    /// the same name returns identical streams.
    pub fn stream(&self, name: &str) -> Rng {
        Rng::from_seed(self.stream_seed(name))
    }

    /// Returns a stream keyed by a name plus an index, for per-entity
    /// streams such as "one per link".
    pub fn indexed_stream(&self, name: &str, index: u64) -> Rng {
        let base = self.stream_seed(name);
        Rng::from_seed(splitmix64(base ^ splitmix64(index)))
    }

    /// The derived 64-bit seed for a named stream.
    pub fn stream_seed(&self, name: &str) -> u64 {
        splitmix64(self.master ^ fnv1a(name.as_bytes()))
    }
}

/// FNV-1a over bytes: a fixed, platform-independent string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 mixing function (Steele et al.); a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let f = RngFactory::new(7);
        let mut x = f.stream("x");
        let mut y = f.stream("x");
        let a: Vec<u64> = (0..16).map(|_| x.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| y.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let f = RngFactory::new(7);
        assert_ne!(f.stream_seed("loss"), f.stream_seed("gossip"));
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(
            RngFactory::new(1).stream_seed("x"),
            RngFactory::new(2).stream_seed("x")
        );
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(9);
        let a = f.indexed_stream("link", 0).next_u64();
        let b = f.indexed_stream("link", 1).next_u64();
        assert_ne!(a, b);
        let a2 = f.indexed_stream("link", 0).next_u64();
        assert_eq!(a, a2);
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // Known FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn xoshiro_matches_reference_sequence() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4},
        // per the reference implementation by Blackman & Vigna.
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for &want in &expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    #[test]
    fn stream_values_in_range() {
        let f = RngFactory::new(123);
        let mut r = f.stream("range");
        for _ in 0..100 {
            let v = r.random_range(0..70u16);
            assert!(v < 70);
        }
    }

    #[test]
    fn random_f64_is_in_unit_interval() {
        let mut r = Rng::from_seed(5);
        for _ in 0..1000 {
            let v = r.random_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_below_is_roughly_uniform() {
        let mut r = Rng::from_seed(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.random_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn random_bool_extremes_never_sample() {
        // p = 0 and p = 1 must not consume randomness disagreeing
        // with their answer.
        let mut r = Rng::from_seed(3);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Rng::from_seed(17);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = r.choose(&items).unwrap();
            seen[(v / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    fn choose_iter_is_uniform_enough() {
        let mut r = Rng::from_seed(23);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            let v = r.choose_iter(0..5usize).unwrap();
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
        assert!(r.choose_iter(std::iter::empty::<u8>()).is_none());
    }

    #[test]
    fn sample_indices_are_distinct_sorted_and_in_bounds() {
        let mut r = Rng::from_seed(29);
        for _ in 0..100 {
            let picked = r.sample_indices(50, 12);
            assert_eq!(picked.len(), 12);
            assert!(picked.windows(2).all(|w| w[0] < w[1]));
            assert!(picked.iter().all(|&i| i < 50));
        }
        // Degenerate cases.
        assert_eq!(r.sample_indices(4, 4), vec![0, 1, 2, 3]);
        assert!(r.sample_indices(4, 0).is_empty());
    }

    #[test]
    fn float_range_spans_interval() {
        let mut r = Rng::from_seed(31);
        for _ in 0..1000 {
            let v = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn zipf_ranks_stay_in_bounds() {
        let mut r = Rng::from_seed(37);
        for &s in &[0.0, 0.5, 1.0, 1.5, 3.0] {
            let zipf = Zipf::new(70, s);
            for _ in 0..2000 {
                let k = zipf.sample(&mut r);
                assert!((1..=70).contains(&k), "s={s}: rank {k} out of range");
            }
        }
        // Degenerate single-rank distribution.
        let one = Zipf::new(1, 2.0);
        assert_eq!(one.sample(&mut r), 1);
    }

    #[test]
    fn zipf_frequencies_match_the_law() {
        // At s = 1 over 1..=10, P(1)/P(2) = 2 and P(1) = 1/H₁₀ ≈ 0.34.
        let zipf = Zipf::new(10, 1.0);
        let mut r = Rng::from_seed(41);
        let mut counts = [0usize; 10];
        let draws = 200_000;
        for _ in 0..draws {
            counts[(zipf.sample(&mut r) - 1) as usize] += 1;
        }
        let h10: f64 = (1..=10).map(|k| 1.0 / k as f64).sum();
        for (i, &c) in counts.iter().enumerate() {
            let want = 1.0 / ((i + 1) as f64 * h10);
            let got = c as f64 / draws as f64;
            assert!(
                (got - want).abs() < 0.01,
                "rank {}: got {got:.4}, want {want:.4}",
                i + 1
            );
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(8, 0.0);
        let mut r = Rng::from_seed(43);
        let mut counts = [0usize; 8];
        for _ in 0..16_000 {
            counts[(zipf.sample(&mut r) - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn zipf_sampling_is_deterministic() {
        let zipf = Zipf::new(1000, 1.2);
        let mut a = Rng::from_seed(47);
        let mut b = Rng::from_seed(47);
        let xs: Vec<u64> = (0..64).map(|_| zipf.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..64).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
