//! Deterministic random-number streams.
//!
//! A single master seed fans out into independent, *named* streams so
//! that sweeping one simulation parameter (say, the buffer size) does
//! not perturb the random choices made by unrelated components (say,
//! the workload content). Stream derivation uses FNV-1a over the name
//! followed by SplitMix64 mixing — both fixed algorithms, so seeds are
//! stable across Rust releases and platforms.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives independent named RNG streams from one master seed.
///
/// # Examples
///
/// ```
/// use eps_sim::RngFactory;
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut topology = factory.stream("topology");
/// let mut workload = factory.stream("workload");
/// // Streams are deterministic...
/// let again = factory.stream("topology").random::<u64>();
/// assert_eq!(topology.random::<u64>(), again);
/// // ...and independent.
/// assert_ne!(factory.stream("topology").random::<u64>(), workload.random::<u64>());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the RNG stream with the given name. Calling twice with
    /// the same name returns identical streams.
    pub fn stream(&self, name: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.stream_seed(name))
    }

    /// Returns a stream keyed by a name plus an index, for per-entity
    /// streams such as "one per link".
    pub fn indexed_stream(&self, name: &str, index: u64) -> SmallRng {
        let base = self.stream_seed(name);
        SmallRng::seed_from_u64(splitmix64(base ^ splitmix64(index)))
    }

    /// The derived 64-bit seed for a named stream.
    pub fn stream_seed(&self, name: &str) -> u64 {
        splitmix64(self.master ^ fnv1a(name.as_bytes()))
    }
}

/// FNV-1a over bytes: a fixed, platform-independent string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 mixing function (Steele et al.); a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = f.stream("x").random_iter().take(16).collect();
        let b: Vec<u64> = f.stream("x").random_iter().take(16).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let f = RngFactory::new(7);
        assert_ne!(f.stream_seed("loss"), f.stream_seed("gossip"));
    }

    #[test]
    fn different_master_seeds_differ() {
        assert_ne!(
            RngFactory::new(1).stream_seed("x"),
            RngFactory::new(2).stream_seed("x")
        );
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(9);
        let a: u64 = f.indexed_stream("link", 0).random();
        let b: u64 = f.indexed_stream("link", 1).random();
        assert_ne!(a, b);
        let a2: u64 = f.indexed_stream("link", 0).random();
        assert_eq!(a, a2);
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // Known FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn stream_values_in_range() {
        let f = RngFactory::new(123);
        let mut r = f.stream("range");
        for _ in 0..100 {
            let v = r.random_range(0..70u16);
            assert!(v < 70);
        }
    }
}
