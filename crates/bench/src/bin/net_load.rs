//! `net_load` — saturation load generator for the epoll reactor
//! runtime: boots a large dispatcher population in one process and
//! sweeps the per-node publish rate upward until the cluster misses
//! its service objective, then records the numbers of the best
//! passing stage in the common bench-JSON shape so `bench_compare`
//! tracks them across commits.
//!
//! ```text
//! net_load [--nodes N] [--workers W] [--seed S] [--duration SECS]
//!          [--drain SECS] [--rates R1,R2,...]
//!          [--out FILE | --merge-into FILE]
//! ```
//!
//! The objective a stage must meet: overall delivery >= 0.95 and p99
//! publish-to-delivery latency <= 250 ms. Three entries are emitted,
//! all encoded lower-is-better so the comparer's one rule fits:
//!
//! - `net_load_interdelivery_ns` — mean wall-clock nanoseconds between
//!   deliveries at the best passing stage (the reciprocal of the
//!   deliveries/sec throughput headline, which prints to stderr).
//! - `net_load_p99_delivery_ns` — the stage's p99 delivery latency.
//! - `net_load_rss_per_node_bytes` — peak resident set (`VmHWM`)
//!   divided by the population size: the per-dispatcher memory bill.
//!
//! With `--merge-into`, the entries are spliced into an existing
//! bench-JSON file (replacing same-named entries), so the reactor
//! numbers land beside the codec microbenches in `BENCH_net.json`.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use eps_bench::timing::{to_json, BenchResult};
use eps_gossip::Algorithm;
use eps_harness::ScenarioConfig;
use eps_net::{run_reactor_cluster, NetConfig};
use eps_sim::SimTime;

/// Delivery-rate floor a stage must hold to count as sustained.
const SLO_DELIVERY: f64 = 0.95;
/// p99 publish-to-delivery latency ceiling for a passing stage.
const SLO_P99: Duration = Duration::from_millis(250);

/// One completed sweep stage.
struct Stage {
    rate: f64,
    delivered: u64,
    deliveries_per_sec: f64,
    p99: Duration,
    delivery_rate: f64,
    passed: bool,
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!(
                "usage: net_load [--nodes N] [--workers W] [--seed S] \
                 [--duration SECS] [--drain SECS] [--rates R1,R2,...] \
                 [--out FILE | --merge-into FILE]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut nodes = 1000usize;
    let mut workers = 2usize;
    let mut seed = 29u64;
    let mut duration = 0.6f64;
    let mut drain = 20.0f64;
    let mut rates = vec![1.0f64, 2.0, 4.0];
    let mut out: Option<String> = None;
    let mut merge_into: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().cloned().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--nodes" | "-n" => nodes = parse(&value()?)?,
            "--workers" => workers = parse(&value()?)?,
            "--seed" => seed = parse(&value()?)?,
            "--duration" => duration = parse(&value()?)?,
            "--drain" => drain = parse(&value()?)?,
            "--rates" => {
                rates = value()?
                    .split(',')
                    .map(|r| parse(r.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--out" => out = Some(value()?),
            "--merge-into" => merge_into = Some(value()?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if rates.is_empty() {
        return Err("--rates needs at least one publish rate".into());
    }

    // The sweep climbs until a stage misses the objective; every stage
    // reruns the full population so the fd/timer/buffer machinery is
    // exercised at scale each time, not just at the highest rate.
    let mut stages: Vec<Stage> = Vec::new();
    for &rate in &rates {
        let stage = run_stage(nodes, workers, seed, duration, drain, rate)?;
        eprintln!(
            "rate {:>6.1}/node: {:>8.0} deliveries/s, p99 {:>7.1} ms, \
             delivery {:.4} ({} delivered) {}",
            rate,
            stage.deliveries_per_sec,
            stage.p99.as_secs_f64() * 1e3,
            stage.delivery_rate,
            stage.delivered,
            if stage.passed { "PASS" } else { "MISS" }
        );
        let failed = !stage.passed;
        stages.push(stage);
        if failed {
            break;
        }
    }

    // Best passing stage; if even the first rate missed, report it
    // anyway (a tracked number beats an absent one) but say so.
    let best = stages.iter().rev().find(|s| s.passed).unwrap_or_else(|| {
        eprintln!("warning: no stage met the objective; recording the first stage");
        &stages[0]
    });
    let rss_per_node = peak_rss_bytes().map(|rss| rss / nodes as f64);
    eprintln!(
        "saturation: {:.0} deliveries/s at {:.1}/node over {} dispatchers \
         on {} workers (p99 {:.1} ms{})",
        best.deliveries_per_sec,
        best.rate,
        nodes,
        workers,
        best.p99.as_secs_f64() * 1e3,
        match rss_per_node {
            Some(r) => format!(", peak RSS {:.0} KiB/node", r / 1024.0),
            None => String::new(),
        }
    );

    let mut results = vec![
        measured("net_load_interdelivery_ns", 1e9 / best.deliveries_per_sec),
        measured("net_load_p99_delivery_ns", best.p99.as_nanos() as f64),
    ];
    if let Some(r) = rss_per_node {
        results.push(measured("net_load_rss_per_node_bytes", r));
    }
    match (out, merge_into) {
        (Some(path), None) => {
            std::fs::write(&path, to_json(&results)).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        (None, Some(path)) => {
            merge(&path, &results)?;
            eprintln!("merged {} entries into {path}", results.len());
        }
        (None, None) => print!("{}", to_json(&results)),
        (Some(_), Some(_)) => return Err("--out and --merge-into are exclusive".into()),
    }
    Ok(())
}

/// Runs one sweep stage: the thousand-dispatcher scale shape (sparse
/// one-pattern subscriptions over a universe the size of the
/// population, lossless links so the byte budget is throughput, not
/// recovery) at the given per-node publish rate.
fn run_stage(
    nodes: usize,
    workers: usize,
    seed: u64,
    duration: f64,
    drain: f64,
    rate: f64,
) -> Result<Stage, String> {
    let wall = SimTime::from_secs_f64(duration);
    let config = NetConfig {
        scenario: ScenarioConfig {
            seed,
            nodes,
            max_degree: 6,
            publish_rate: rate,
            link_error_rate: 0.0,
            pattern_universe: nodes.min(u16::MAX as usize) as u16,
            pi_max: 1,
            duration: wall,
            warmup: wall.mul_f64(0.125),
            cooldown: wall.mul_f64(0.125),
            gossip_interval: SimTime::from_millis(100),
            algorithm: Algorithm::push(),
            ..ScenarioConfig::default()
        },
        drain: Duration::from_secs_f64(drain),
        ..NetConfig::default()
    };
    let start = Instant::now();
    let report = run_reactor_cluster(config, workers).map_err(|e| format!("reactor: {e}"))?;
    let elapsed = start.elapsed();
    if report.net.decode_errors > 0 || report.trace_dropped > 0 {
        return Err(format!(
            "stage at rate {rate} corrupted: {} decode errors, {} trace drops",
            report.net.decode_errors, report.trace_dropped
        ));
    }
    let delivered = report.latency.samples;
    if delivered == 0 {
        return Err(format!("stage at rate {rate} delivered nothing"));
    }
    let p99 = report.latency.p99;
    let delivery_rate = report.result.overall_delivery_rate;
    Ok(Stage {
        rate,
        delivered,
        deliveries_per_sec: delivered as f64 / elapsed.as_secs_f64(),
        p99,
        delivery_rate,
        passed: delivery_rate >= SLO_DELIVERY && p99 <= SLO_P99,
    })
}

/// A direct measurement in the bench-JSON shape: the "median" is the
/// measured value itself, in the unit the entry's name carries.
fn measured(name: &str, value: f64) -> BenchResult {
    BenchResult {
        name: name.to_owned(),
        samples: 1,
        iters_per_sample: 1,
        median_ns: value,
        min_ns: value,
        mean_ns: value,
    }
}

/// This process's peak resident set (`VmHWM`), in bytes. `None` on
/// hosts without procfs.
fn peak_rss_bytes() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024.0)
}

/// Splices `fresh` into an existing `to_json`-shaped file: existing
/// entry lines are kept verbatim (minus any same-named entry being
/// replaced), the new ones appended, and the standard envelope
/// rebuilt — so repeated merges are idempotent and `bench_compare`'s
/// line scanner keeps working.
fn merge(path: &str, fresh: &[BenchResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut entries: Vec<String> = text
        .lines()
        .filter(|l| l.contains("\"name\":"))
        .filter(|l| !fresh.iter().any(|r| l.contains(&format!("\"{}\"", r.name))))
        .map(|l| l.trim().trim_end_matches(',').to_owned())
        .collect();
    for line in to_json(fresh).lines().filter(|l| l.contains("\"name\":")) {
        entries.push(line.trim().trim_end_matches(',').to_owned());
    }
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, entry) in entries.iter().enumerate() {
        out.push_str("    ");
        out.push_str(entry);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse '{s}'"))
}
