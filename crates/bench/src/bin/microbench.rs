//! `microbench` — wall-clock benchmarks of the simulator's hot paths,
//! with no external dependencies.
//!
//! ```text
//! microbench [--out FILE]      # default: BENCH_kernel.json
//! ```
//!
//! Covers the event-queue kernel (schedule/pop, cancellation), the
//! no-alloc subscription-table matching path, per-hop event cloning,
//! the in-tree RNG, and one miniature end-to-end scenario at the
//! paper's Figure 2 defaults. Results (median ns per iteration) print
//! to stderr and are written as JSON for tracking across commits.

use std::process::ExitCode;

use eps_bench::mini;
use eps_bench::timing::{bench, to_json, BenchResult};
use eps_gossip::AlgorithmKind;
use eps_harness::run_scenario;
use eps_overlay::NodeId;
use eps_pubsub::{Event, EventId, Interface, PatternId, SubscriptionTable};
use eps_sim::{Engine, Rng, SimTime};

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_kernel.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("usage: microbench [--out FILE]   (unknown arg '{other}')");
                return ExitCode::FAILURE;
            }
        }
    }

    let results = vec![
        engine_schedule_pop(),
        engine_cancel(),
        table_matching(),
        event_clone_hop(),
        rng_throughput(),
        scenario_mini(),
    ];
    for r in &results {
        eprintln!(
            "{:<24} median {:>12.1} ns/iter  (min {:.1}, mean {:.1}, {} x {} iters)",
            r.name, r.median_ns, r.min_ns, r.mean_ns, r.samples, r.iters_per_sample
        );
    }
    let json = to_json(&results);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// Schedule N events at pseudo-random times, then pop them all: the
/// simulator's single hottest loop.
fn engine_schedule_pop() -> BenchResult {
    const N: u64 = 10_000;
    let mut rng = Rng::from_seed(1);
    bench("engine_schedule_pop", 3, 15, 2 * N, || {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..N {
            engine.schedule(SimTime::from_nanos(rng.random_below(1 << 30)), i);
        }
        while engine.pop().is_some() {}
    })
}

/// Schedule N events, cancel every other one, drain the rest: the
/// tombstone path.
fn engine_cancel() -> BenchResult {
    const N: u64 = 10_000;
    let mut rng = Rng::from_seed(2);
    bench("engine_cancel_drain", 3, 15, 2 * N, || {
        let mut engine: Engine<u64> = Engine::new();
        let ids: Vec<_> = (0..N)
            .map(|i| engine.schedule(SimTime::from_nanos(rng.random_below(1 << 30)), i))
            .collect();
        for id in ids.iter().step_by(2) {
            engine.cancel(*id);
        }
        while engine.pop().is_some() {}
    })
}

/// Match events against a populated subscription table through the
/// buffer-reuse path used by the dispatcher.
fn table_matching() -> BenchResult {
    const EVENTS: u64 = 1_000;
    let mut rng = Rng::from_seed(3);
    let mut table = SubscriptionTable::new();
    // 70 patterns, a handful of subscribed neighbors each — the
    // Figure 2 shape as one dispatcher sees it.
    for p in 0..70u16 {
        for _ in 0..1 + rng.random_below(4) {
            let n = NodeId::new(rng.random_below(10) as u32);
            table.insert(PatternId::new(p), Interface::Neighbor(n));
        }
        if rng.random_bool(0.3) {
            table.insert(PatternId::new(p), Interface::Local);
        }
    }
    let events: Vec<Event> = (0..EVENTS)
        .map(|i| {
            let mut patterns: Vec<u16> = (0..3).map(|_| rng.random_below(70) as u16).collect();
            patterns.sort_unstable();
            patterns.dedup();
            Event::new(
                EventId::new(NodeId::new(0), i),
                patterns
                    .into_iter()
                    .map(|p| (PatternId::new(p), i))
                    .collect(),
            )
        })
        .collect();
    let mut scratch = Vec::new();
    let mut total = 0usize;
    let result = bench("table_matching", 3, 25, EVENTS, || {
        for event in &events {
            table.matching_neighbors_into(event, Some(NodeId::new(1)), &mut scratch);
            total += scratch.len();
        }
    });
    assert!(total > 0, "matching produced no forwards");
    result
}

/// Per-hop event handling: clone (refcount bump) plus a recorded hop
/// (copy-on-write route extension).
fn event_clone_hop() -> BenchResult {
    const N: u64 = 10_000;
    let event = Event::new(
        EventId::new(NodeId::new(0), 1),
        vec![(PatternId::new(3), 1), (PatternId::new(9), 2)],
    );
    let mut sink = 0u64;
    let result = bench("event_clone_record_hop", 3, 25, N, || {
        for i in 0..N {
            let mut hop = event.clone();
            hop.record_hop(NodeId::new(i as u32));
            sink = sink.wrapping_add(hop.route().len() as u64);
        }
    });
    assert!(sink > 0);
    result
}

/// Raw RNG throughput (xoshiro256++).
fn rng_throughput() -> BenchResult {
    const N: u64 = 100_000;
    let mut rng = Rng::from_seed(4);
    let mut sink = 0u64;
    let result = bench("rng_next_u64", 3, 25, N, || {
        for _ in 0..N {
            sink = sink.wrapping_add(rng.next_u64());
        }
    });
    assert!(sink != 0);
    result
}

/// One miniature end-to-end run at the Figure 2 defaults (quick
/// variant): the number every other figure's wall-clock scales with.
fn scenario_mini() -> BenchResult {
    let config = mini(AlgorithmKind::CombinedPull);
    let mut delivered = 0.0;
    let result = bench("scenario_mini_fig2", 1, 5, 1, || {
        delivered = run_scenario(&config).delivery_rate;
    });
    assert!(delivered > 0.0);
    result
}
