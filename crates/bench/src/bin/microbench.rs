//! `microbench` — wall-clock benchmarks of the simulator's hot paths,
//! with no external dependencies.
//!
//! ```text
//! microbench [--out FILE] [--gossip-out FILE]
//!     # defaults: BENCH_kernel.json, BENCH_gossip.json
//! ```
//!
//! Covers the event-queue kernel (schedule/pop, cancellation), the
//! no-alloc subscription-table matching path, per-hop event cloning,
//! the in-tree RNG, and one miniature end-to-end scenario at the
//! paper's Figure 2 defaults — plus one gossip-round benchmark per
//! registered recovery strategy (so a new registry composition is
//! benchmarked automatically). Results (median ns per iteration)
//! print to stderr and are written as JSON for tracking across
//! commits: the kernel set to `--out`, the per-strategy set to
//! `--gossip-out`.

use std::process::ExitCode;
use std::sync::Arc;

use eps_bench::mini;
use eps_bench::timing::{bench, to_json, BenchResult};
use eps_gossip::{
    codec, Algorithm, DigestBody, DigestPolicy, Envelope, GossipConfig, GossipMessage,
    NegativeDigest, PositiveDigest, SummaryDigestPolicy,
};
use eps_harness::{build_population, run_scenario, ScenarioConfig, SimNode};
use eps_net::frame::{frame, FrameReader};
use eps_overlay::{NodeId, OverlayKind, Topology};
use eps_pubsub::{
    ClientId, ClientRegistry, Dispatcher, DispatcherConfig, Event, EventId, Interface, LossRecord,
    PatternId, PubSubMessage, SubscriptionTable, SummaryIndex,
};
use eps_sim::{Engine, Rng, RngFactory, SimTime};

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_kernel.json");
    let mut gossip_out_path = String::from("BENCH_gossip.json");
    let mut net_out_path = String::from("BENCH_net.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--gossip-out" => match iter.next() {
                Some(path) => gossip_out_path = path.clone(),
                None => {
                    eprintln!("error: --gossip-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--net-out" => match iter.next() {
                Some(path) => net_out_path = path.clone(),
                None => {
                    eprintln!("error: --net-out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "usage: microbench [--out FILE] [--gossip-out FILE] [--net-out FILE]   (unknown arg '{other}')"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // Memory first: the RSS-delta measurement needs a heap no earlier
    // benchmark has grown and refragmented.
    let mut results = node_memory();
    results.extend([
        engine_schedule_pop(),
        engine_cancel(),
        table_matching(),
        table_matching_dense(),
        detector_record(),
        cache_digest_build(),
        event_clone_hop(),
        rng_throughput(),
        scenario_mini(),
    ]);
    results.extend(topology_build());
    let mut gossip_results = gossip_rounds();
    gossip_results.extend(digest_scaling());
    gossip_results.extend(table_matching_aggregated());
    let net_results = vec![
        codec_encode_event(),
        codec_roundtrip(),
        codec_roundtrip_digest(),
        frame_reassembly(),
    ];
    for r in results.iter().chain(&gossip_results).chain(&net_results) {
        eprintln!(
            "{:<28} median {:>12.1} ns/iter  (min {:.1}, mean {:.1}, {} x {} iters)",
            r.name, r.median_ns, r.min_ns, r.mean_ns, r.samples, r.iters_per_sample
        );
    }
    for (path, set) in [
        (&out_path, &results),
        (&gossip_out_path, &gossip_results),
        (&net_out_path, &net_results),
    ] {
        if let Err(e) = std::fs::write(path, to_json(set)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// Reads this process's current resident set from `/proc/self/status`
/// (`VmRSS`, kB). `None` on platforms without procfs.
fn resident_bytes() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024.0)
}

/// A direct measurement reported through the bench JSON: the "median"
/// is the measured value itself, in the unit the entry's name carries.
fn measured(name: &str, value: f64) -> BenchResult {
    BenchResult {
        name: name.to_owned(),
        samples: 1,
        iters_per_sample: 1,
        median_ns: value,
        min_ns: value,
        mean_ns: value,
    }
}

/// Per-node memory at setup: the exact `size_of::<SimNode>()` plus the
/// resident-set growth per node while building a 10 000-dispatcher
/// population at the Figure 2 content model — the number the sharded
/// runner's 10⁵–10⁶-node ambitions scale with. Values are **bytes**,
/// not nanoseconds (the names carry the unit); the JSON shape is the
/// common `{name, median_ns}` one so `bench_compare` tracks them
/// across commits like any other entry.
fn node_memory() -> Vec<BenchResult> {
    const N: usize = 10_000;
    let mut out = vec![measured(
        "simnode_size_of_bytes",
        std::mem::size_of::<SimNode>() as f64,
    )];
    let before = resident_bytes();
    let population = build_population(&ScenarioConfig {
        nodes: N,
        ..ScenarioConfig::default()
    });
    let after = resident_bytes();
    assert_eq!(population.nodes.len(), N, "population built at full size");
    if let (Some(before), Some(after)) = (before, after) {
        out.push(measured(
            "population_heap_bytes_per_node/n10000",
            (after - before).max(0.0) / N as f64,
        ));
    }
    out
}

/// Schedule N events at pseudo-random times, then pop them all: the
/// simulator's single hottest loop.
fn engine_schedule_pop() -> BenchResult {
    const N: u64 = 10_000;
    let mut rng = Rng::from_seed(1);
    bench("engine_schedule_pop", 3, 15, 2 * N, || {
        let mut engine: Engine<u64> = Engine::new();
        for i in 0..N {
            engine.schedule(SimTime::from_nanos(rng.random_below(1 << 30)), i);
        }
        while engine.pop().is_some() {}
    })
}

/// Schedule N events, cancel every other one, drain the rest: the
/// tombstone path.
fn engine_cancel() -> BenchResult {
    const N: u64 = 10_000;
    let mut rng = Rng::from_seed(2);
    bench("engine_cancel_drain", 3, 15, 2 * N, || {
        let mut engine: Engine<u64> = Engine::new();
        let ids: Vec<_> = (0..N)
            .map(|i| engine.schedule(SimTime::from_nanos(rng.random_below(1 << 30)), i))
            .collect();
        for id in ids.iter().step_by(2) {
            engine.cancel(*id);
        }
        while engine.pop().is_some() {}
    })
}

/// The Figure 2 matching workload: 70 patterns with a handful of
/// subscribed neighbors each (as one dispatcher sees it), and 1000
/// three-pattern events to match.
fn matching_workload(table: &mut SubscriptionTable) -> Vec<Event> {
    const EVENTS: u64 = 1_000;
    let mut rng = Rng::from_seed(3);
    for p in 0..70u16 {
        for _ in 0..1 + rng.random_below(4) {
            let n = NodeId::new(rng.random_below(10) as u32);
            table.insert(PatternId::new(p), Interface::Neighbor(n));
        }
        if rng.random_bool(0.3) {
            table.insert(PatternId::new(p), Interface::Local);
        }
    }
    (0..EVENTS)
        .map(|i| {
            let mut patterns: Vec<u16> = (0..3).map(|_| rng.random_below(70) as u16).collect();
            patterns.sort_unstable();
            patterns.dedup();
            Event::new(
                EventId::new(NodeId::new(0), i),
                patterns
                    .into_iter()
                    .map(|p| (PatternId::new(p), i))
                    .collect(),
            )
        })
        .collect()
}

/// Match events against a populated subscription table through the
/// buffer-reuse path used by the dispatcher.
fn table_matching() -> BenchResult {
    let mut table = SubscriptionTable::new();
    let events = matching_workload(&mut table);
    let mut scratch = Vec::new();
    let mut total = 0usize;
    let result = bench("table_matching", 3, 25, events.len() as u64, || {
        for event in &events {
            table.matching_neighbors_into(event, Some(NodeId::new(1)), &mut scratch);
            total += scratch.len();
        }
    });
    assert!(total > 0, "matching produced no forwards");
    result
}

/// Same workload as `table_matching`, but with the table pre-sized
/// from the universe and degree as the harness setup path does —
/// tracks the fully dense configuration explicitly.
fn table_matching_dense() -> BenchResult {
    let mut table = SubscriptionTable::with_dims(70, 10);
    let events = matching_workload(&mut table);
    let mut scratch = Vec::new();
    let mut total = 0usize;
    let result = bench("table_matching_dense", 3, 25, events.len() as u64, || {
        for event in &events {
            table.matching_neighbors_into(event, Some(NodeId::new(1)), &mut scratch);
            total += scratch.len();
        }
    });
    assert!(total > 0, "matching produced no forwards");
    result
}

/// Loss-detector bookkeeping on in-order streams: the per-event cost
/// every subscriber pays on the delivery path.
fn detector_record() -> BenchResult {
    const N: u64 = 10_000;
    // 10 sources × 70 patterns, each (source, pattern) stream advancing
    // in order — the loss-free steady state, which is the common case.
    let events: Vec<Event> = (0..N)
        .map(|i| {
            let source = NodeId::new((i % 10) as u32);
            let pattern = PatternId::new(((i / 10) % 70) as u16);
            let seq = i / 700;
            Event::new(EventId::new(source, i), vec![(pattern, seq)])
        })
        .collect();
    let mut sink = 0usize;
    let result = bench("detector_record", 3, 25, N, || {
        let mut det = eps_pubsub::LossDetector::with_universe(70);
        for event in &events {
            det.observe(event, |_| true);
        }
        sink += det.stream_count();
        assert_eq!(det.detected_total(), 0, "in-order streams lose nothing");
    });
    assert_eq!(sink % 700, 0, "10 sources x 70 patterns tracked");
    result
}

/// Digest construction over a full cache: `ids_matching` for every
/// pattern in the universe, the per-round cost of the push and pull
/// digest builders.
fn cache_digest_build() -> BenchResult {
    const SWEEPS: u64 = 70;
    let mut rng = Rng::from_seed(5);
    let mut cache = eps_pubsub::EventCache::new(1_500);
    // Fill the cache to capacity β = 1500 with 1–3-pattern events.
    for i in 0..1_500u64 {
        let mut patterns: Vec<u16> = (0..3).map(|_| rng.random_below(70) as u16).collect();
        patterns.sort_unstable();
        patterns.dedup();
        cache.insert(Event::new(
            EventId::new(NodeId::new((i % 10) as u32), i),
            patterns
                .into_iter()
                .map(|p| (PatternId::new(p), i))
                .collect(),
        ));
    }
    let mut sink = 0usize;
    let result = bench("cache_digest_build", 3, 25, SWEEPS, || {
        for p in 0..70u16 {
            sink += cache.ids_matching(PatternId::new(p)).len();
        }
    });
    assert!(sink > 0, "a full cache yields non-empty digests");
    result
}

/// Per-hop event handling: clone (refcount bump) plus a recorded hop
/// (copy-on-write route extension).
fn event_clone_hop() -> BenchResult {
    const N: u64 = 10_000;
    let event = Event::new(
        EventId::new(NodeId::new(0), 1),
        vec![(PatternId::new(3), 1), (PatternId::new(9), 2)],
    );
    let mut sink = 0u64;
    let result = bench("event_clone_record_hop", 3, 25, N, || {
        for i in 0..N {
            let mut hop = event.clone();
            hop.record_hop(NodeId::new(i as u32));
            sink = sink.wrapping_add(hop.route().len() as u64);
        }
    });
    assert!(sink > 0);
    result
}

/// Raw RNG throughput (xoshiro256++).
fn rng_throughput() -> BenchResult {
    const N: u64 = 100_000;
    let mut rng = Rng::from_seed(4);
    let mut sink = 0u64;
    let result = bench("rng_next_u64", 3, 25, N, || {
        for _ in 0..N {
            sink = sink.wrapping_add(rng.next_u64());
        }
    });
    assert!(sink != 0);
    result
}

/// A dispatcher with the state every digest policy draws on: local
/// and neighbor subscriptions on a handful of patterns, a populated
/// cache of events that arrived with recorded routes (so
/// source-steered digests can reverse them).
fn gossip_node() -> Dispatcher {
    let mut node = Dispatcher::new(
        NodeId::new(5),
        DispatcherConfig {
            cache_own_published: true,
            record_routes: true,
            // The registry includes the summary-reconciliation family,
            // whose digests read the cache's hash-range index.
            summary_index: true,
            ..DispatcherConfig::default()
        },
    );
    for p in 1..=4u16 {
        node.subscribe_local(PatternId::new(p), &[]);
        node.on_subscribe(PatternId::new(p), NodeId::new(u32::from(p)), &[]);
    }
    for seq in 0..64u64 {
        let pattern = PatternId::new(1 + (seq % 4) as u16);
        let mut event = Event::new(EventId::new(NodeId::new(0), seq), vec![(pattern, seq)]);
        event.record_hop(NodeId::new(1 + (seq % 4) as u32));
        node.on_event(event, Some(NodeId::new(1 + (seq % 4) as u32)));
    }
    node
}

/// One gossip round per registered recovery strategy, on the
/// steady-state workload a loaded dispatcher sees: a warm cache for
/// the positive digests, a replenished `Lost` buffer for the negative
/// ones. Iterates over the registry, so hybrids registered later are
/// picked up without touching this file.
fn gossip_rounds() -> Vec<BenchResult> {
    const ROUNDS: u64 = 1_000;
    let node = gossip_node();
    let neighbors: Vec<NodeId> = (1..=4).map(NodeId::new).collect();
    let losses: Vec<LossRecord> = (0..32u64)
        .map(|i| LossRecord {
            source: NodeId::new(0),
            pattern: PatternId::new(1 + (i % 4) as u16),
            seq: 1_000 + i,
        })
        .collect();
    Algorithm::all()
        .into_iter()
        .map(|algo| {
            let mut strategy = algo.build(eps_gossip::GossipConfig::default());
            let mut sink = 0usize;
            let result = bench(
                &format!("gossip_round/{}", algo.name()),
                2,
                15,
                ROUNDS,
                || {
                    let mut rng = Rng::from_seed(7);
                    for _ in 0..ROUNDS {
                        strategy.on_losses(&losses);
                        sink += strategy.on_round(&node, &neighbors, &mut rng).len();
                    }
                },
            );
            assert!(
                algo.name() == "no-recovery" || sink > 0,
                "{} produced no actions",
                algo.name()
            );
            result
        })
        .collect()
}

/// Cache sizes of the digest-cost sweep: 10²–10⁵ cached events, the
/// axis the summary-reconciliation evaluation scales along (the
/// paper's β = 1500 sits near the low end).
const DIGEST_SWEEP: [usize; 4] = [100, 1_000, 10_000, 100_000];

/// A dispatcher whose summary-indexed cache holds exactly `c` events,
/// spread evenly over four locally subscribed patterns with in-order
/// per-pattern sequence numbers (so filling it detects no losses).
fn digest_node(c: usize) -> Dispatcher {
    let mut node = Dispatcher::new(
        NodeId::new(5),
        DispatcherConfig {
            cache_capacity: c,
            summary_index: true,
            ..DispatcherConfig::default()
        },
    );
    for p in 1..=4u16 {
        node.subscribe_local(PatternId::new(p), &[]);
    }
    for seq in 0..c as u64 {
        let pattern = PatternId::new(1 + (seq % 4) as u16);
        let event = Event::new(EventId::new(NodeId::new(0), seq), vec![(pattern, seq / 4)]);
        node.on_event(event, Some(NodeId::new(1)));
    }
    node
}

/// Digest construction cost versus cache size: the before/after curve
/// of summary reconciliation. The linear digests re-announce cached
/// ids (push) or outstanding losses (pull) entry by entry, so their
/// per-round build cost — like their wire size — grows O(C); the
/// summary digest emits one root aggregate from the incremental
/// hash-range index, so it stays flat. `summary_index_maintain` prices
/// what that index costs the cache on every insert/evict to make the
/// flat build possible. The `summary_*` entries are demoted to
/// advisory in `bench_compare` (see `scripts/tier1.sh`): sub-µs
/// map-churn loops are too noisy on shared hosts to gate.
fn digest_scaling() -> Vec<BenchResult> {
    const PATTERNS: u64 = 4;
    let mut out = Vec::new();
    for c in DIGEST_SWEEP {
        let node = digest_node(c);

        // Linear push: every matching cached id, untruncated (positive
        // digests never shrink — the paper charges each gossip message
        // one event-size regardless).
        let mut push = PositiveDigest::new();
        let mut sink = 0usize;
        let result = bench(
            &format!("digest_build/linear_push/c{c}"),
            2,
            15,
            PATTERNS,
            || {
                for p in 1..=4u16 {
                    if let Some(DigestBody::Positive(ids)) =
                        push.build_for_pattern(&node, PatternId::new(p), usize::MAX)
                    {
                        sink += ids.len();
                    }
                }
            },
        );
        assert!(sink >= c, "push digests covered the cache");
        out.push(result);

        // Linear pull: a `Lost` buffer scaled with the cache (the
        // recovery window the buffer must remember grows with β), with
        // expiry disabled so repeated builds see a steady buffer.
        let config = GossipConfig {
            max_attempts: u32::MAX,
            lost_capacity: Some(c),
            ..GossipConfig::default()
        };
        let mut pull = NegativeDigest::new(&config);
        let losses: Vec<LossRecord> = (0..c as u64)
            .map(|i| LossRecord {
                source: NodeId::new(0),
                pattern: PatternId::new(1 + (i % PATTERNS) as u16),
                seq: 1_000_000 + i,
            })
            .collect();
        pull.on_losses(&losses);
        let mut sink = 0usize;
        let result = bench(
            &format!("digest_build/linear_pull/c{c}"),
            2,
            15,
            PATTERNS,
            || {
                for p in 1..=4u16 {
                    if let Some(DigestBody::Negative(entries)) =
                        pull.build_for_pattern(&node, PatternId::new(p), usize::MAX)
                    {
                        sink += entries.len();
                    }
                }
            },
        );
        assert!(sink >= c, "pull digests covered the loss buffer");
        out.push(result);

        // Summary digest: one root aggregate per round, read straight
        // off the maintained index — O(1) in C.
        let mut summary = SummaryDigestPolicy::push(&GossipConfig::default());
        let mut sink = 0usize;
        let result = bench(
            &format!("summary_digest_build/c{c}"),
            2,
            15,
            PATTERNS,
            || {
                for p in 1..=4u16 {
                    if let Some(DigestBody::Summary { ranges, .. }) =
                        summary.build_for_pattern(&node, PatternId::new(p), 128)
                    {
                        sink += ranges.len();
                    }
                }
            },
        );
        assert!(sink > 0, "summary digests produced root aggregates");
        out.push(result);

        // Index maintenance at resident size C: one add + remove pair
        // per churned id (each is LEVEL_COUNT map updates; XOR makes
        // removal restore the aggregates exactly, so the loop is
        // state-preserving).
        const CHURN: u64 = 1_000;
        let mut index = SummaryIndex::new();
        let pattern = PatternId::new(1);
        for i in 0..c as u64 {
            index.add(pattern, EventId::new(NodeId::new(0), i));
        }
        let before = index.root(pattern);
        let result = bench(
            &format!("summary_index_maintain/c{c}"),
            2,
            15,
            2 * CHURN,
            || {
                for k in 0..CHURN {
                    let id = EventId::new(NodeId::new(1), k);
                    index.add(pattern, id);
                    index.remove(pattern, id);
                }
            },
        );
        assert_eq!(
            (before.count, before.hash),
            (index.root(pattern).count, index.root(pattern).hash),
            "add/remove churn restored the root aggregate"
        );
        out.push(result);
    }
    out
}

/// Broker-level matching under the client layer: `N` client
/// subscriptions over a Π = 4096 universe collapse into at most Π
/// aggregate filters, so the per-event routing decision — a
/// [`SubscriptionTable`] match against the aggregate plus neighbor
/// state — must stay flat as `N` grows 10⁴ → 10⁶ (the sublinearity the
/// client layer exists for). Three entries per size land in the gossip
/// JSON: the matching ns/event, the one-shot aggregate-filter count
/// (unit: filters, not ns), and the local fan-out ns/event (which
/// legitimately grows with deliveries, recorded for contrast). The
/// one-shot counts are deterministic; the timings ride the advisory
/// compare like every other gossip entry.
fn table_matching_aggregated() -> Vec<BenchResult> {
    const UNIVERSE: u64 = 4096;
    const PATTERNS_PER_CLIENT: u64 = 4;
    const EVENTS: u64 = 1_000;
    let mut out = Vec::new();
    let mut rng = Rng::from_seed(6);
    let events: Vec<Event> = (0..EVENTS)
        .map(|i| {
            let mut patterns: Vec<u16> =
                (0..3).map(|_| rng.random_below(UNIVERSE) as u16).collect();
            patterns.sort_unstable();
            patterns.dedup();
            Event::new(
                EventId::new(NodeId::new(0), i),
                patterns
                    .into_iter()
                    .map(|p| (PatternId::new(p), i))
                    .collect(),
            )
        })
        .collect();
    for (subs, label) in [
        (10_000u64, "clients1e4"),
        (100_000, "clients1e5"),
        (1_000_000, "clients1e6"),
    ] {
        let clients = subs / PATTERNS_PER_CLIENT;
        let mut pairs: Vec<(PatternId, ClientId)> = Vec::with_capacity(subs as usize);
        for c in 0..clients {
            for _ in 0..PATTERNS_PER_CLIENT {
                pairs.push((
                    PatternId::new(rng.random_below(UNIVERSE) as u16),
                    ClientId::new(c as u32),
                ));
            }
        }
        // Subscribing in ascending (pattern, client) order keeps every
        // insert an append, so building 10⁶ pairs stays linear.
        pairs.sort_unstable();
        pairs.dedup();
        let mut registry = ClientRegistry::new();
        for &(p, c) in &pairs {
            registry.subscribe(c, p);
        }
        out.push(measured(
            &format!("table_matching_aggregated/{label}/aggregate_filters"),
            registry.aggregate_len() as f64,
        ));

        // The routing layer sees only the aggregate: one Local bit per
        // aggregate filter, plus the usual neighbor state.
        let mut table = SubscriptionTable::with_dims(UNIVERSE as usize, 10);
        for p in registry.aggregate_patterns() {
            table.insert(p, Interface::Local);
        }
        for p in (0..UNIVERSE as u16).step_by(8) {
            table.insert(
                PatternId::new(p),
                Interface::Neighbor(NodeId::new(u32::from(p) % 10)),
            );
        }
        let mut scratch = Vec::new();
        let mut total = 0usize;
        let result = bench(
            &format!("table_matching_aggregated/{label}"),
            2,
            15,
            EVENTS,
            || {
                for event in &events {
                    table.matching_neighbors_into(event, Some(NodeId::new(1)), &mut scratch);
                    total += scratch.len() + usize::from(table.matches_locally(event));
                }
            },
        );
        assert!(total > 0, "{label}: matching produced no routing decisions");
        out.push(result);

        let mut fanout = Vec::new();
        let mut delivered = 0usize;
        let fanout_result = bench(
            &format!("table_matching_aggregated/{label}/client_fanout"),
            2,
            15,
            EVENTS,
            || {
                for event in &events {
                    registry.matching_clients_into(event, &mut fanout);
                    delivered += fanout.len();
                }
            },
        );
        assert!(delivered > 0, "{label}: fan-out matched no clients");
        out.push(fanout_result);
    }
    out
}

/// One miniature end-to-end run at the Figure 2 defaults (quick
/// variant): the number every other figure's wall-clock scales with.
fn scenario_mini() -> BenchResult {
    let config = mini(Algorithm::combined_pull());
    let mut delivered = 0.0;
    let result = bench("scenario_mini_fig2", 1, 5, 1, || {
        delivered = run_scenario(&config).delivery_rate;
    });
    assert!(delivered > 0.0);
    result
}

/// Construction cost of each overlay builder at simulator scale: the
/// setup the sharded runner's 10⁵-node runs pay before the first event
/// fires. One full build per iteration; a fresh seed each time so no
/// run benefits from a warm layout.
fn topology_build() -> Vec<BenchResult> {
    let mut out = Vec::new();
    for (kind, max_degree) in [
        (OverlayKind::Tree, 4usize),
        (OverlayKind::BarabasiAlbert, 6),
        (OverlayKind::WattsStrogatz, 6),
    ] {
        for (n, warmup, samples) in [(10_000usize, 2, 10), (100_000, 1, 3)] {
            let mut seed = 0u64;
            out.push(bench(
                &format!("topology_build_{}/n{n}", kind.name()),
                warmup,
                samples,
                1,
                || {
                    seed += 1;
                    let mut rng = RngFactory::new(seed).stream("topology");
                    let topo = Topology::build(kind, n, max_degree, &mut rng);
                    assert_eq!(topo.len(), n, "builder produced the full graph");
                },
            ));
        }
    }
    out
}

/// The wire codec's one-payload budget, matching the scenario default.
const PAYLOAD_BITS: u64 = 1024;

/// A routed multi-pattern event envelope — the dominant message class
/// on the tree links.
fn codec_event_envelope() -> Envelope {
    let mut event = Event::new(
        EventId::new(NodeId::new(2), 9),
        vec![(PatternId::new(3), 41), (PatternId::new(8), 17)],
    );
    event.record_hop(NodeId::new(1));
    event.record_hop(NodeId::new(4));
    Envelope::PubSub(PubSubMessage::Event(event))
}

/// Encode-only cost of the dominant message class (the per-send cost
/// every tree hop pays in the socket runtime).
fn codec_encode_event() -> BenchResult {
    const N: u64 = 10_000;
    let env = codec_event_envelope();
    let mut sink = 0usize;
    let result = bench("codec_encode_event", 3, 25, N, || {
        for _ in 0..N {
            sink += codec::encode(&env, PAYLOAD_BITS).expect("encodes").len();
        }
    });
    assert!(sink > 0);
    result
}

/// Full encode → decode round trip of an event envelope: the combined
/// sender + receiver codec cost per tree frame.
fn codec_roundtrip() -> BenchResult {
    const N: u64 = 10_000;
    let env = codec_event_envelope();
    let mut sink = 0usize;
    let result = bench("codec_roundtrip", 3, 25, N, || {
        for _ in 0..N {
            let bytes = codec::encode(&env, PAYLOAD_BITS).expect("encodes");
            let back = codec::decode(&bytes, PAYLOAD_BITS).expect("decodes");
            sink += matches!(back, Envelope::PubSub(PubSubMessage::Event(_))) as usize;
        }
    });
    assert!(sink as u64 >= N, "every roundtrip inverted");
    result
}

/// Round trip of a full-budget push digest — the largest gossip body
/// the codec ever frames (a digest is trimmed to one event payload).
fn codec_roundtrip_digest() -> BenchResult {
    const N: u64 = 2_000;
    let oversized = Envelope::Gossip(GossipMessage::PushDigest {
        gossiper: NodeId::new(0),
        pattern: PatternId::new(3),
        ids: Arc::new(
            (0..200u64)
                .map(|i| EventId::new(NodeId::new((i % 10) as u32), i))
                .collect(),
        ),
    });
    let (env, dropped) = codec::fit(oversized, PAYLOAD_BITS);
    assert!(dropped > 0, "the digest saturates the payload budget");
    let mut sink = 0usize;
    let result = bench("codec_roundtrip_digest", 3, 25, N, || {
        for _ in 0..N {
            let bytes = codec::encode(&env, PAYLOAD_BITS).expect("encodes");
            let back = codec::decode(&bytes, PAYLOAD_BITS).expect("decodes");
            sink += matches!(back, Envelope::Gossip(GossipMessage::PushDigest { .. })) as usize;
        }
    });
    assert!(sink as u64 >= N, "every roundtrip inverted");
    result
}

/// Frame reassembly over a fragmented byte stream: the receive-side
/// cost of the TCP tree links, fed in read-sized chunks.
fn frame_reassembly() -> BenchResult {
    const FRAMES: u64 = 1_000;
    let body = codec::encode(&codec_event_envelope(), PAYLOAD_BITS).expect("encodes");
    let mut wire = Vec::new();
    for _ in 0..FRAMES {
        wire.extend_from_slice(&frame(&body));
    }
    let mut sink = 0u64;
    let result = bench("frame_reassembly", 3, 25, FRAMES, || {
        let mut reader = FrameReader::new();
        // Typical read granularity: a few frames per syscall.
        for chunk in wire.chunks(512) {
            reader.extend(chunk);
            while let Some(body) = reader.next_frame().expect("clean stream") {
                sink += body.len() as u64;
            }
        }
        assert_eq!(reader.pending(), 0);
    });
    assert!(sink > 0);
    result
}
