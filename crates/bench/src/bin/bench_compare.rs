//! `bench_compare` — diff a fresh `BENCH_*.json` against the
//! checked-in baseline and flag regressions, with no external
//! dependencies (the JSON is parsed with a scanner matched to
//! [`eps_bench::timing::to_json`]'s output — no jq, no serde).
//!
//! ```text
//! bench_compare [--threshold PCT] [--strict] [--advisory-prefix PREFIX]...
//!               BASELINE CURRENT [BASELINE CURRENT ...]
//! ```
//!
//! Prints a delta table per file pair. A benchmark regresses when its
//! current median exceeds the baseline median by more than
//! `--threshold` percent (default 10). In advisory mode (the default,
//! used by `scripts/tier1.sh`) regressions are reported but the exit
//! code stays zero — wall-clock benches on shared machines are too
//! noisy to gate CI hard; `--strict` exits non-zero instead.
//! `--advisory-prefix` demotes matching benchmark names to
//! advisory-only even under `--strict` — for entries (like the
//! one-shot topology builds) whose single-iteration timings are too
//! coarse to gate hard. Benchmarks present on only one side are listed
//! but never fail the comparison (new benches appear, old ones
//! retire).

use std::process::ExitCode;

/// One `{"name": ..., "median_ns": ...}` entry.
struct Entry {
    name: String,
    median_ns: f64,
}

/// Extracts the string value following `key` at `pos` in `line`.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses the benchmark entries out of a `to_json`-shaped file: one
/// object per line, each carrying `"name"` and `"median_ns"` fields.
fn parse(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field(line, "\"name\": \"") else {
            continue;
        };
        let Some(median) = field(line, "\"median_ns\": ") else {
            continue;
        };
        let median_ns: f64 = median
            .parse()
            .map_err(|e| format!("{path}: bad median_ns for {name}: {e}"))?;
        out.push(Entry {
            name: name.to_owned(),
            median_ns,
        });
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark entries found"));
    }
    Ok(out)
}

/// Compares one baseline/current pair; returns the regressed names.
/// Names matching an advisory prefix are reported but never returned.
fn compare(
    baseline_path: &str,
    current_path: &str,
    threshold_pct: f64,
    advisory_prefixes: &[String],
) -> Result<Vec<String>, String> {
    let baseline = parse(baseline_path)?;
    let current = parse(current_path)?;
    let mut regressions = Vec::new();
    println!("comparing {current_path} against {baseline_path} (threshold {threshold_pct}%):");
    println!(
        "  {:<40} {:>14} {:>14} {:>9}",
        "benchmark", "baseline ns", "current ns", "delta"
    );
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            println!(
                "  {:<40} {:>14.1} {:>14} {:>9}",
                b.name, b.median_ns, "-", "gone"
            );
            continue;
        };
        let delta_pct = (c.median_ns - b.median_ns) / b.median_ns * 100.0;
        let advisory = advisory_prefixes.iter().any(|p| b.name.starts_with(p));
        let flag = if delta_pct > threshold_pct {
            if advisory {
                "  regressed (advisory)"
            } else {
                regressions.push(b.name.clone());
                "  REGRESSED"
            }
        } else {
            ""
        };
        println!(
            "  {:<40} {:>14.1} {:>14.1} {:>+8.1}%{}",
            b.name, b.median_ns, c.median_ns, delta_pct, flag
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| b.name == c.name) {
            println!(
                "  {:<40} {:>14} {:>14.1} {:>9}",
                c.name, "-", c.median_ns, "new"
            );
        }
    }
    Ok(regressions)
}

fn main() -> ExitCode {
    let mut threshold_pct = 10.0;
    let mut strict = false;
    let mut advisory_prefixes: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold_pct = v,
                None => {
                    eprintln!("error: --threshold needs a percentage");
                    return ExitCode::FAILURE;
                }
            },
            "--strict" => strict = true,
            "--advisory-prefix" => match iter.next() {
                Some(p) => advisory_prefixes.push(p.clone()),
                None => {
                    eprintln!("error: --advisory-prefix needs a benchmark-name prefix");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with('-') => files.push(other.to_owned()),
            other => {
                eprintln!(
                    "usage: bench_compare [--threshold PCT] [--strict] \
                     [--advisory-prefix PREFIX]... BASELINE CURRENT ...   \
                     (unknown arg '{other}')"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if files.is_empty() || !files.len().is_multiple_of(2) {
        eprintln!(
            "usage: bench_compare [--threshold PCT] [--strict] \
             [--advisory-prefix PREFIX]... BASELINE CURRENT ..."
        );
        return ExitCode::FAILURE;
    }

    let mut regressions = Vec::new();
    for pair in files.chunks(2) {
        match compare(&pair[0], &pair[1], threshold_pct, &advisory_prefixes) {
            Ok(mut r) => regressions.append(&mut r),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if regressions.is_empty() {
        println!("no regressions beyond {threshold_pct}%");
        ExitCode::SUCCESS
    } else {
        println!(
            "{} regression(s) beyond {threshold_pct}%: {}",
            regressions.len(),
            regressions.join(", ")
        );
        if strict {
            ExitCode::FAILURE
        } else {
            println!("(advisory mode: not failing; pass --strict to gate)");
            ExitCode::SUCCESS
        }
    }
}
