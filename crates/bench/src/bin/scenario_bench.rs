//! `scenario_bench` — end-to-end wall-clock benchmarks: one full
//! miniature Figure 2 run per paper algorithm, plus one Figure
//! 3(b)-style reconfiguration run per algorithm, with no external
//! dependencies.
//!
//! ```text
//! scenario_bench [--out FILE]    # default: BENCH_scenario.json
//! ```
//!
//! Where `microbench` isolates kernels, this binary times whole
//! scenario runs — queue, transport, dispatching, recovery, metrics
//! assembly — so a regression anywhere in the stack shows up even if
//! every kernel looks fine in isolation. Results (median ns per run)
//! print to stderr and are written as JSON; `scripts/tier1.sh` diffs
//! them against the committed baseline via `bench_compare`.

use std::process::ExitCode;

use eps_bench::timing::{bench, to_json, BenchResult};
use eps_bench::{mini, mini_reconfig};
use eps_gossip::Algorithm;
use eps_harness::run_scenario;
use eps_sim::SimTime;

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_scenario.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("usage: scenario_bench [--out FILE]   (unknown arg '{other}')");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut results = Vec::new();
    for algo in Algorithm::paper() {
        results.push(timed_run(
            &format!("scenario_fig2/{}", algo.name()),
            mini(algo),
        ));
    }
    for algo in Algorithm::paper() {
        results.push(timed_run(
            &format!("scenario_fig3_reconfig/{}", algo.name()),
            mini_reconfig(algo, SimTime::from_millis(250)),
        ));
    }

    for r in &results {
        eprintln!(
            "{:<40} median {:>12.1} ns/run  (min {:.1}, {} samples)",
            r.name, r.median_ns, r.min_ns, r.samples
        );
    }
    if let Err(e) = std::fs::write(&out_path, to_json(&results)) {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// Times complete runs of one scenario configuration (median of 5).
fn timed_run(name: &str, config: eps_harness::ScenarioConfig) -> BenchResult {
    let mut delivered = 0.0;
    let result = bench(name, 1, 5, 1, || {
        delivered = run_scenario(&config).delivery_rate;
    });
    assert!(delivered > 0.0, "{name}: nothing was delivered");
    result
}
