//! `scenario_bench` — end-to-end wall-clock benchmarks: one full
//! miniature Figure 2 run per paper algorithm, plus one Figure
//! 3(b)-style reconfiguration run per algorithm, with no external
//! dependencies.
//!
//! ```text
//! scenario_bench [--out FILE] [--large]    # default: BENCH_scenario.json
//! ```
//!
//! Where `microbench` isolates kernels, this binary times whole
//! scenario runs — queue, transport, dispatching, recovery, metrics
//! assembly — so a regression anywhere in the stack shows up even if
//! every kernel looks fine in isolation. Results (median ns per run)
//! print to stderr and are written as JSON; `scripts/tier1.sh` diffs
//! them against the committed baseline via `bench_compare`.
//!
//! `--large` additionally runs the sharded runner at 100 000
//! dispatchers (a dense Figure 2-style content model) for shard counts
//! 1 and 4, reporting event-loop throughput (`events_per_sec`), peak
//! memory (`peak_rss_bytes`) and wall-clock splits. Each large cell
//! executes in a re-exec'd subprocess so its `VmHWM` reading is that
//! run's own high-water mark, not an earlier cell's. These entries use
//! the shared `{name, median_ns}` JSON shape with unit-bearing names;
//! they are recorded once per machine and compared advisorily.

use std::process::{Command, ExitCode};

use eps_bench::timing::{bench, to_json, BenchResult};
use eps_bench::{mini, mini_reconfig};
use eps_gossip::Algorithm;
use eps_harness::{run_scenario, run_scenario_sharded_with_stats, ScenarioConfig};
use eps_sim::SimTime;

/// The large-mode population size: the ISSUE's "one machine, 10⁵
/// dispatchers" floor.
const LARGE_NODES: usize = 100_000;

/// Shard counts the large mode compares. On a multi-core host K > 1
/// should beat K = 1 on `loop_wall`; the numbers record what this
/// machine actually did either way.
const LARGE_SHARDS: [usize; 2] = [1, 4];

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_scenario.json");
    let mut large = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--large" => large = true,
            // Internal: run one large cell in this process and print
            // its raw measurements to stdout (used via re-exec so the
            // peak-RSS reading belongs to this cell alone).
            "--one-large" => {
                let (Some(nodes), Some(shards)) = (
                    iter.next().and_then(|s| s.parse().ok()),
                    iter.next().and_then(|s| s.parse().ok()),
                ) else {
                    eprintln!("error: --one-large needs NODES and SHARDS");
                    return ExitCode::FAILURE;
                };
                return run_one_large(nodes, shards);
            }
            other => {
                eprintln!("usage: scenario_bench [--out FILE] [--large]   (unknown arg '{other}')");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut results = Vec::new();
    for algo in Algorithm::paper() {
        results.push(timed_run(
            &format!("scenario_fig2/{}", algo.name()),
            mini(algo),
        ));
    }
    for algo in Algorithm::paper() {
        results.push(timed_run(
            &format!("scenario_fig3_reconfig/{}", algo.name()),
            mini_reconfig(algo, SimTime::from_millis(250)),
        ));
    }
    if large {
        for shards in LARGE_SHARDS {
            match large_cell(LARGE_NODES, shards) {
                Ok(mut cell) => results.append(&mut cell),
                Err(e) => {
                    eprintln!("error: large cell n{LARGE_NODES}/shards{shards}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    for r in &results {
        eprintln!(
            "{:<40} median {:>12.1} ns/run  (min {:.1}, {} samples)",
            r.name, r.median_ns, r.min_ns, r.samples
        );
    }
    if let Err(e) = std::fs::write(&out_path, to_json(&results)) {
        eprintln!("error: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}

/// Times complete runs of one scenario configuration: two warmup runs
/// (page in code and allocator arenas), then the median of nine.
fn timed_run(name: &str, config: ScenarioConfig) -> BenchResult {
    let mut delivered = 0.0;
    let result = bench(name, 2, 9, 1, || {
        delivered = run_scenario(&config).delivery_rate;
    });
    assert!(delivered > 0.0, "{name}: nothing was delivered");
    result
}

/// The large-mode scenario: Figure 2's link and gossip parameters on
/// 10⁵ dispatchers with a dense content model (Π = 8192, π_max = 2,
/// so each pattern keeps ≈ 25 subscribers — the paper's density) and
/// a per-dispatcher publish rate scaled down to keep the aggregate
/// event load at 1 000 events/s.
fn large_config(nodes: usize) -> ScenarioConfig {
    ScenarioConfig {
        nodes,
        pattern_universe: 8192,
        pi_max: 2,
        publish_rate: 0.01,
        duration: SimTime::from_secs(1),
        warmup: SimTime::from_millis(125),
        cooldown: SimTime::from_millis(250),
        algorithm: Algorithm::push(),
        ..ScenarioConfig::default()
    }
}

/// Reads this process's peak resident set from `/proc/self/status`
/// (`VmHWM`, kB). `None` on platforms without procfs.
fn peak_rss_bytes() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024.0)
}

/// Child mode: one sharded run, raw measurements on stdout as
/// `events_processed loop_seconds setup_seconds peak_rss_bytes
/// delivery_rate`.
fn run_one_large(nodes: usize, shards: usize) -> ExitCode {
    let config = large_config(nodes);
    let (result, stats) = run_scenario_sharded_with_stats(&config, shards);
    let peak = peak_rss_bytes().unwrap_or(0.0);
    println!(
        "{} {} {} {} {}",
        stats.events_processed,
        stats.loop_wall.as_secs_f64(),
        stats.setup_wall.as_secs_f64(),
        peak,
        result.delivery_rate,
    );
    ExitCode::SUCCESS
}

/// A direct measurement reported through the bench JSON: the "median"
/// is the measured value itself, in the unit the entry's name carries.
fn measured(name: String, value: f64) -> BenchResult {
    BenchResult {
        name,
        samples: 1,
        iters_per_sample: 1,
        median_ns: value,
        min_ns: value,
        mean_ns: value,
    }
}

/// Runs one `(nodes, shards)` large cell in a fresh subprocess and
/// turns its raw line into bench entries.
fn large_cell(nodes: usize, shards: usize) -> Result<Vec<BenchResult>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    eprintln!("large cell: n{nodes} shards{shards} (subprocess)...");
    let output = Command::new(exe)
        .args(["--one-large", &nodes.to_string(), &shards.to_string()])
        .output()
        .map_err(|e| format!("spawning subprocess: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "subprocess failed: {}",
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    let line = String::from_utf8_lossy(&output.stdout);
    let fields: Vec<f64> = line
        .split_whitespace()
        .map(|f| f.parse().map_err(|e| format!("bad field '{f}': {e}")))
        .collect::<Result<_, _>>()?;
    let [events, loop_s, setup_s, peak_rss, delivery] = fields[..] else {
        return Err(format!("expected 5 fields, got: {line:?}"));
    };
    assert!(delivery > 0.0, "large run delivered nothing");
    let prefix = format!("large_fig2/n{nodes}/shards{shards}");
    Ok(vec![
        measured(format!("{prefix}/events_per_sec"), events / loop_s),
        measured(format!("{prefix}/loop_wall_ns"), loop_s * 1e9),
        measured(format!("{prefix}/setup_wall_ns"), setup_s * 1e9),
        measured(format!("{prefix}/peak_rss_bytes"), peak_rss),
    ])
}
