//! A minimal wall-clock benchmark harness: warmup, repeated samples,
//! median-of-samples reporting, and hand-rolled JSON output — no
//! external crates, so it runs in offline builds where criterion
//! cannot.
//!
//! The median is the headline statistic: it is robust against the
//! occasional scheduler hiccup that poisons a mean, and stable enough
//! to compare across commits.

use std::time::Instant;

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (JSON key).
    pub name: String,
    /// Timed samples collected (after warmup).
    pub samples: usize,
    /// Iterations per sample; reported times are per iteration.
    pub iters_per_sample: u64,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

/// Times `f`, which must execute `iters` iterations of the workload
/// per call: `warmup` untimed calls, then `samples` timed ones.
/// Reported numbers are nanoseconds per iteration.
pub fn bench<F: FnMut()>(
    name: &str,
    warmup: usize,
    samples: usize,
    iters: u64,
    mut f: F,
) -> BenchResult {
    assert!(
        samples > 0 && iters > 0,
        "need at least one timed iteration"
    );
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = if times.len() % 2 == 1 {
        times[times.len() / 2]
    } else {
        (times[times.len() / 2 - 1] + times[times.len() / 2]) / 2.0
    };
    BenchResult {
        name: name.to_owned(),
        samples,
        iters_per_sample: iters,
        median_ns: median,
        min_ns: times[0],
        mean_ns: times.iter().sum::<f64>() / times.len() as f64,
    }
}

/// Renders results as a pretty-printed JSON object:
/// `{"benchmarks": [{"name": ..., "median_ns": ...}, ...]}`.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}{}\n",
            r.name,
            r.samples,
            r.iters_per_sample,
            r.median_ns,
            r.min_ns,
            r.mean_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let mut counter = 0u64;
        let r = bench("noop", 2, 5, 100, || {
            for _ in 0..100 {
                counter = counter.wrapping_add(1);
            }
        });
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns.is_finite() && r.median_ns >= 0.0);
        assert!(counter > 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let r = BenchResult {
            name: "x".into(),
            samples: 3,
            iters_per_sample: 10,
            median_ns: 1.5,
            min_ns: 1.0,
            mean_ns: 2.0,
        };
        let json = to_json(&[r.clone(), r]);
        assert!(json.starts_with("{\n  \"benchmarks\": [\n"));
        assert_eq!(json.matches("\"name\": \"x\"").count(), 2);
        assert!(json.matches(',').count() > 0);
        assert!(json.trim_end().ends_with('}'));
    }
}
