//! # eps-bench — benchmark support
//!
//! Shared miniature configurations plus a zero-dependency wall-clock
//! [`timing`] harness. The real, paper-scale figures are regenerated
//! by the `repro` binary in `eps-harness`; the benches here run
//! *miniatures* of each figure's distinctive configuration so that
//! benchmarking finishes in minutes while still exercising every
//! experiment code path and tracking the simulator's performance over
//! time.
//!
//! Three binaries: `microbench` covers the kernel hot paths (engine
//! schedule/pop, subscription-table matching, loss-detector
//! recording, cache digest reads, event cloning, the RNG) plus one
//! miniature end-to-end run, writing `BENCH_kernel.json` and
//! `BENCH_gossip.json`; `scenario_bench` times full miniature
//! Figure 2 and Figure 3(b) runs per paper algorithm into
//! `BENCH_scenario.json`; `bench_compare` diffs fresh results against
//! the committed baselines and flags regressions past a configurable
//! threshold. `scripts/tier1.sh` chains all three in advisory mode.
//! The criterion benches live in the workspace-excluded `extras/`
//! package, since criterion needs registry access.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod timing;

use eps_gossip::Algorithm;
use eps_harness::ScenarioConfig;
use eps_sim::SimTime;

/// A miniature of the paper's default scenario: 20 dispatchers,
/// 1.5 virtual seconds, the Figure 2 parameters otherwise.
pub fn mini(algorithm: Algorithm) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 20,
        publish_rate: 25.0,
        duration: SimTime::from_secs_f64(1.5),
        warmup: SimTime::from_millis(200),
        cooldown: SimTime::from_millis(300),
        algorithm,
        ..ScenarioConfig::default()
    }
}

/// A miniature reconfiguration scenario (Figure 3(b)).
pub fn mini_reconfig(algorithm: Algorithm, rho: SimTime) -> ScenarioConfig {
    ScenarioConfig {
        link_error_rate: 0.0,
        reconfig_interval: Some(rho),
        ..mini(algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_configs_are_valid() {
        mini(Algorithm::push()).validate();
        mini_reconfig(Algorithm::combined_pull(), SimTime::from_millis(100)).validate();
    }
}
