//! Patterns and the content model of the paper's Section IV-A.
//!
//! Events are "randomly-generated sequences of numbers, where each
//! number represents a pattern of the system"; an event pattern is a
//! single number; an event matches a subscription if it contains that
//! number. The system has `Π` patterns (70 by default) and an event
//! matches at most 3 patterns.

use eps_sim::{Rng, Zipf};

/// Largest pattern universe (Π) for which per-pattern per-node state
/// stays dense-indexed. Past this, auxiliary structures that would
/// cost O(Π) per dispatcher regardless of occupancy (publication
/// counters, cache pattern index, loss-detector rows) switch to sparse
/// layouts holding only occupied patterns — a pure layout change, with
/// behavior identical on both sides of the threshold. The paper's
/// Π = 70 stays dense; the threshold only engages for the large-Π
/// large-N scaling runs.
pub(crate) const DENSE_UNIVERSE_MAX: usize = 4096;

/// A content pattern: a single number out of the pattern universe.
///
/// # Examples
///
/// ```
/// use eps_pubsub::PatternId;
///
/// let p = PatternId::new(5);
/// assert_eq!(p.value(), 5);
/// assert_eq!(p.to_string(), "p5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PatternId(u16);

impl PatternId {
    /// Creates a pattern id.
    pub const fn new(v: u16) -> Self {
        PatternId(v)
    }

    /// The raw pattern number.
    pub const fn value(self) -> u16 {
        self.0
    }

    /// The dense index of this pattern, for indexing per-pattern arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for PatternId {
    fn from(v: u16) -> Self {
        PatternId(v)
    }
}

impl std::fmt::Display for PatternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The pattern universe: the `Π` patterns available in the system and
/// the content-generation model built on them.
///
/// # Examples
///
/// ```
/// use eps_pubsub::PatternSpace;
/// use eps_sim::RngFactory;
///
/// let space = PatternSpace::new(70, 3);
/// let mut rng = RngFactory::new(1).stream("content");
/// let content = space.random_content(&mut rng);
/// assert!(!content.is_empty() && content.len() <= 3);
/// let subs = space.random_subscriptions(2, &mut rng);
/// assert_eq!(subs.len(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternSpace {
    universe: u16,
    max_patterns_per_event: usize,
    /// Pattern-popularity skew: `None` is the paper's uniform model
    /// (and draws byte-identically to it); `Some` draws pattern ranks
    /// from a bounded Zipf law, with pattern 0 the most popular.
    zipf: Option<Zipf>,
}

impl PatternSpace {
    /// The paper's default universe: Π = 70 patterns, at most 3
    /// patterns per event.
    pub fn paper_default() -> Self {
        PatternSpace::new(70, 3)
    }

    /// Creates a pattern space.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or `max_patterns_per_event == 0`.
    pub fn new(universe: u16, max_patterns_per_event: usize) -> Self {
        assert!(universe > 0, "pattern universe must be non-empty");
        assert!(
            max_patterns_per_event > 0,
            "events must carry at least one pattern"
        );
        PatternSpace {
            universe,
            max_patterns_per_event,
            zipf: None,
        }
    }

    /// Creates a pattern space with Zipf-skewed pattern popularity of
    /// exponent `s` (ROADMAP 4b: realistic workloads concentrate both
    /// content and interest on few hot patterns). Pattern 0 is rank 1
    /// (most popular). `s = 0` is exactly the uniform model — the
    /// returned space equals [`PatternSpace::new`] and consumes the
    /// same RNG draws.
    ///
    /// # Panics
    ///
    /// Panics on the [`PatternSpace::new`] constraints, or if `s` is
    /// negative or non-finite.
    pub fn with_zipf(universe: u16, max_patterns_per_event: usize, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be ≥ 0");
        let mut space = PatternSpace::new(universe, max_patterns_per_event);
        if s > 0.0 {
            space.zipf = Some(Zipf::new(universe as u64, s));
        }
        space
    }

    /// The Zipf exponent, or 0 for the uniform model.
    pub fn zipf_exponent(&self) -> f64 {
        self.zipf.map_or(0.0, |z| z.exponent())
    }

    /// Number of patterns in the universe (Π).
    pub fn universe(&self) -> u16 {
        self.universe
    }

    /// Maximum number of patterns a single event can match.
    pub fn max_patterns_per_event(&self) -> usize {
        self.max_patterns_per_event
    }

    /// Iterator over every pattern in the universe.
    pub fn patterns(&self) -> impl Iterator<Item = PatternId> {
        (0..self.universe).map(PatternId::new)
    }

    /// Draws the content of a new event: `max_patterns_per_event`
    /// uniform draws (with replacement, as a random number sequence
    /// would produce), deduplicated and sorted. The result has between
    /// 1 and `max_patterns_per_event` distinct patterns.
    pub fn random_content(&self, rng: &mut Rng) -> Vec<PatternId> {
        let mut content = Vec::with_capacity(self.max_patterns_per_event);
        self.random_content_into(rng, &mut content);
        content
    }

    /// Allocation-free variant of [`PatternSpace::random_content`]:
    /// clears and refills `out`, drawing from `rng` in exactly the
    /// same order, so a publisher ticking at the paper's rates reuses
    /// one buffer instead of allocating per publication.
    pub fn random_content_into(&self, rng: &mut Rng, out: &mut Vec<PatternId>) {
        out.clear();
        match self.zipf {
            // The uniform path must stay byte-identical to the
            // pre-Zipf model: same draws, same order.
            None => out.extend(
                (0..self.max_patterns_per_event)
                    .map(|_| PatternId::new(rng.random_range(0..self.universe))),
            ),
            Some(zipf) => out.extend(
                (0..self.max_patterns_per_event)
                    .map(|_| PatternId::new(zipf.sample(rng) as u16 - 1)),
            ),
        }
        out.sort();
        out.dedup();
    }

    /// Draws `count` *distinct* patterns for a subscriber (the paper's
    /// π_max subscriptions per dispatcher, "drawn randomly from the
    /// overall number Π of patterns").
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the universe size.
    pub fn random_subscriptions(&self, count: usize, rng: &mut Rng) -> Vec<PatternId> {
        assert!(
            count <= self.universe as usize,
            "cannot draw {count} distinct patterns from a universe of {}",
            self.universe
        );
        match self.zipf {
            // Floyd's sampler, byte-identical to the pre-Zipf model.
            None => rng
                .sample_indices(self.universe as usize, count)
                .into_iter()
                .map(|i| PatternId::new(i as u16))
                .collect(),
            // Skewed interest: Zipf draws, rejecting repeats until
            // `count` distinct patterns accumulate. With count ≪ Π
            // (the π_max regime) the rejection loop terminates fast;
            // the caller gets a sorted list either way.
            Some(zipf) => {
                let mut subs: Vec<PatternId> = Vec::with_capacity(count);
                while subs.len() < count {
                    let p = PatternId::new(zipf.sample(rng) as u16 - 1);
                    if let Err(pos) = subs.binary_search(&p) {
                        subs.insert(pos, p);
                    }
                }
                subs
            }
        }
    }

    /// Expected number of subscribers per pattern for `n` dispatchers
    /// each holding `pi_max` subscriptions: `N_π = N·π_max / Π`
    /// (Section IV-A; 2.85 at the paper's defaults).
    pub fn subscribers_per_pattern(&self, n: usize, pi_max: usize) -> f64 {
        (n * pi_max) as f64 / self.universe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eps_sim::RngFactory;

    #[test]
    fn paper_default_matches_figure_2() {
        let s = PatternSpace::paper_default();
        assert_eq!(s.universe(), 70);
        assert_eq!(s.max_patterns_per_event(), 3);
        let n_pi = s.subscribers_per_pattern(100, 2);
        assert!((n_pi - 2.857).abs() < 0.01, "N_pi = {n_pi}");
    }

    #[test]
    fn content_is_sorted_distinct_and_bounded() {
        let s = PatternSpace::paper_default();
        let mut rng = RngFactory::new(3).stream("content");
        for _ in 0..1000 {
            let c = s.random_content(&mut rng);
            assert!((1..=3).contains(&c.len()));
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            assert!(c.iter().all(|p| p.value() < 70));
        }
    }

    #[test]
    fn content_covers_the_universe() {
        let s = PatternSpace::paper_default();
        let mut rng = RngFactory::new(4).stream("content");
        let mut hit = [false; 70];
        for _ in 0..5000 {
            for p in s.random_content(&mut rng) {
                hit[p.index()] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "uniform draws should cover Π");
    }

    #[test]
    fn random_content_into_matches_allocating_variant() {
        let s = PatternSpace::paper_default();
        let mut rng_a = RngFactory::new(9).stream("content");
        let mut rng_b = RngFactory::new(9).stream("content");
        let mut buf = vec![PatternId::new(99)]; // stale content is cleared
        for _ in 0..200 {
            let fresh = s.random_content(&mut rng_a);
            s.random_content_into(&mut rng_b, &mut buf);
            assert_eq!(fresh, buf, "identical draws, identical content");
        }
    }

    #[test]
    fn subscriptions_are_distinct() {
        let s = PatternSpace::paper_default();
        let mut rng = RngFactory::new(5).stream("subs");
        for count in [1, 2, 5, 30, 70] {
            let subs = s.random_subscriptions(count, &mut rng);
            assert_eq!(subs.len(), count);
            assert!(subs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic]
    fn too_many_subscriptions_panics() {
        let s = PatternSpace::new(10, 3);
        let mut rng = RngFactory::new(5).stream("subs");
        let _ = s.random_subscriptions(11, &mut rng);
    }

    #[test]
    fn patterns_enumerates_universe() {
        let s = PatternSpace::new(7, 1);
        assert_eq!(s.patterns().count(), 7);
    }

    #[test]
    fn zipf_zero_is_the_uniform_model_exactly() {
        // The `--zipf 0` default must be a provable identity: same
        // struct, same draws, same outputs.
        let uniform = PatternSpace::new(70, 3);
        let zipf0 = PatternSpace::with_zipf(70, 3, 0.0);
        assert_eq!(uniform, zipf0);
        let mut rng_a = RngFactory::new(11).stream("content");
        let mut rng_b = RngFactory::new(11).stream("content");
        for _ in 0..200 {
            assert_eq!(
                uniform.random_content(&mut rng_a),
                zipf0.random_content(&mut rng_b)
            );
            assert_eq!(
                uniform.random_subscriptions(2, &mut rng_a),
                zipf0.random_subscriptions(2, &mut rng_b)
            );
        }
    }

    #[test]
    fn zipf_content_is_sorted_distinct_and_skewed() {
        let s = PatternSpace::with_zipf(70, 3, 1.5);
        assert!((s.zipf_exponent() - 1.5).abs() < 1e-12);
        let mut rng = RngFactory::new(13).stream("content");
        let mut low = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let c = s.random_content(&mut rng);
            assert!((1..=3).contains(&c.len()));
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            assert!(c.iter().all(|p| p.value() < 70));
            total += c.len();
            low += c.iter().filter(|p| p.value() < 7).count();
        }
        // At s = 1.5 the top decile of patterns carries well over half
        // the draws; uniform would give it 10%.
        assert!(
            low as f64 > 0.5 * total as f64,
            "skew missing: {low}/{total} draws in the top decile"
        );
    }

    #[test]
    fn zipf_subscriptions_are_distinct_and_sorted() {
        let s = PatternSpace::with_zipf(70, 3, 1.0);
        let mut rng = RngFactory::new(17).stream("subs");
        for count in [1, 2, 5, 20] {
            let subs = s.random_subscriptions(count, &mut rng);
            assert_eq!(subs.len(), count);
            assert!(subs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
