//! Hash-range summary trees over cached event ids (ROADMAP item 2).
//!
//! The paper's push/pull digests re-announce the cache linearly, so
//! anti-entropy wire bytes grow O(C) with cache size. This module
//! provides the substrate for *summary reconciliation*: every cached
//! [`EventId`] is hashed by a fixed 64-bit mixer into a key space that
//! is carved into a radix tree of ranges (fanout 16, six levels). Each
//! range keeps an order-independent aggregate — the count of resident
//! ids and the XOR of their mixed hashes — so two caches can compare a
//! single root [`RangeSummary`] in O(1) bytes and recurse only into the
//! ranges that differ, reaching O(log C + Δ) for Δ differing events.
//!
//! The aggregates are *incremental*: inserting or evicting one event
//! touches exactly one range per level ([`LEVEL_COUNT`] = 6 map
//! updates), so the index is maintained by [`crate::EventCache`] on
//! insert/evict with no per-round rebuild. XOR makes removal the same
//! operation as insertion, and makes the aggregate independent of
//! insertion order — the property that lets two independently grown
//! caches agree byte-for-byte on identical content.
//!
//! All range storage is in `BTreeMap`s, so every exposed iteration
//! (children of a range, ids inside a range) is deterministically
//! ordered — a requirement for the byte-identical golden runs.

use std::collections::BTreeMap;

use crate::event::EventId;
use crate::pattern::PatternId;

/// log₂ of the tree fanout: each level refines a range into 16
/// children, consuming 4 more bits of the mixed hash.
pub const FANOUT_BITS: u32 = 4;

/// The tree fanout (children per non-leaf range).
pub const FANOUT: u32 = 1 << FANOUT_BITS;

/// The deepest level. Levels run 0 (root) ..= [`LEAF_LEVEL`]; a leaf
/// range is addressed by the top `FANOUT_BITS * LEAF_LEVEL` = 20 bits
/// of the mixed hash, giving 2²⁰ leaf ranges — enough that even a 10⁶
/// event cache averages ≲ 1 id per leaf.
pub const LEAF_LEVEL: u8 = 5;

/// Number of levels in the tree (root plus [`LEAF_LEVEL`] refinements).
pub const LEVEL_COUNT: usize = LEAF_LEVEL as usize + 1;

/// Mixes an event id into the 64-bit summary key space.
///
/// A splitmix64-style finalizer over the (source, seq) pair: cheap,
/// dependency-free, and avalanching — sequential seq values from one
/// source land in unrelated ranges, so hot publishers do not skew the
/// tree. Both sides of a reconciliation must use this exact function;
/// it is part of the wire contract of the summary digests.
pub fn mix_event_id(id: EventId) -> u64 {
    let mut z = ((id.source().value() as u64) << 32) ^ id.seq();
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Address of one range of the tree: a level and the index of the
/// range within that level (the top `FANOUT_BITS * level` bits of the
/// mixed hash).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RangeRef {
    level: u8,
    index: u32,
}

impl RangeRef {
    /// The root range covering the whole key space.
    pub const ROOT: RangeRef = RangeRef { level: 0, index: 0 };

    /// Creates a range reference.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`LEAF_LEVEL`] or `index` is out of
    /// range for the level.
    pub fn new(level: u8, index: u32) -> Self {
        assert!(level <= LEAF_LEVEL, "range level {level} too deep");
        assert!(
            (index as u64) < 1u64 << (FANOUT_BITS * level as u32),
            "range index {index} out of range for level {level}"
        );
        RangeRef { level, index }
    }

    /// The level of this range (0 = root).
    pub const fn level(self) -> u8 {
        self.level
    }

    /// The index of this range within its level.
    pub const fn index(self) -> u32 {
        self.index
    }

    /// `true` if this range cannot be refined further.
    pub const fn is_leaf(self) -> bool {
        self.level == LEAF_LEVEL
    }

    /// The range containing `hash` at the given level.
    pub fn of(hash: u64, level: u8) -> Self {
        assert!(level <= LEAF_LEVEL, "range level {level} too deep");
        RangeRef {
            level,
            index: index_at(hash, level),
        }
    }

    /// The `i`-th child of this range (`i < `[`FANOUT`]).
    pub fn child(self, i: u32) -> Self {
        assert!(!self.is_leaf(), "leaf ranges have no children");
        assert!(i < FANOUT, "child index {i} out of range");
        RangeRef {
            level: self.level + 1,
            index: (self.index << FANOUT_BITS) | i,
        }
    }

    /// `true` if `hash` falls inside this range.
    pub fn contains(self, hash: u64) -> bool {
        index_at(hash, self.level) == self.index
    }

    /// The span of leaf-range indices covered by this range:
    /// `start..end`.
    fn leaf_span(self) -> (u32, u32) {
        let shift = FANOUT_BITS * (LEAF_LEVEL - self.level) as u32;
        (self.index << shift, (self.index + 1) << shift)
    }
}

impl std::fmt::Display for RangeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}/{:#x}", self.level, self.index)
    }
}

/// The order-independent aggregate of one range: how many ids it holds
/// and the XOR of their mixed hashes. Two ranges with equal summaries
/// hold the same id set (up to a 2⁻⁶⁴ collision, which the count
/// further guards).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RangeSummary {
    /// The range being summarized.
    pub range: RangeRef,
    /// Number of ids resident in the range.
    pub count: u64,
    /// XOR of the mixed hashes of the resident ids (0 when empty).
    pub hash: u64,
}

impl RangeSummary {
    /// The summary of an empty range.
    pub fn empty(range: RangeRef) -> Self {
        RangeSummary {
            range,
            count: 0,
            hash: 0,
        }
    }
}

/// A fully expanded range: the complete list of event ids a gossiper
/// holds inside it, in cache insertion order. Sent when a range is
/// small enough that listing beats further recursion — including the
/// empty list, which tells the receiver the gossiper has *nothing*
/// there (pull mode needs that to reply with its surplus).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RangeDetail {
    /// The range being expanded.
    pub range: RangeRef,
    /// Every id the sender holds in the range.
    pub ids: Vec<EventId>,
}

/// Per-range aggregate storage.
#[derive(Clone, Copy, Default, Debug)]
struct RangeAgg {
    count: u64,
    hash: u64,
}

/// The incremental hash-range tree over one pattern's cached ids.
///
/// Insert and remove cost [`LEVEL_COUNT`] map updates each — O(log C)
/// — which is the whole point: the index rides along with the cache
/// instead of being rebuilt per gossip round.
#[derive(Clone, Default, Debug)]
pub struct CacheSummary {
    /// Aggregates per level, keyed by range index. Only non-empty
    /// ranges are stored.
    levels: [BTreeMap<u32, RangeAgg>; LEVEL_COUNT],
    /// Resident ids per leaf range, in insertion order.
    leaves: BTreeMap<u32, Vec<EventId>>,
}

impl CacheSummary {
    /// Adds an id to the tree. The caller must not add the same id
    /// twice without removing it in between.
    pub fn add(&mut self, id: EventId) {
        let h = mix_event_id(id);
        for level in 0..LEVEL_COUNT {
            let agg = self.levels[level]
                .entry(index_at(h, level as u8))
                .or_default();
            agg.count += 1;
            agg.hash ^= h;
        }
        self.leaves
            .entry(index_at(h, LEAF_LEVEL))
            .or_default()
            .push(id);
    }

    /// Removes an id previously added. Removing an id that is not
    /// resident is a no-op on the leaf list but would corrupt the
    /// aggregates, so it panics in debug builds.
    pub fn remove(&mut self, id: EventId) {
        let h = mix_event_id(id);
        let leaf = index_at(h, LEAF_LEVEL);
        let Some(ids) = self.leaves.get_mut(&leaf) else {
            debug_assert!(false, "removing {id} from a summary that lacks it");
            return;
        };
        let Some(pos) = ids.iter().position(|&x| x == id) else {
            debug_assert!(false, "removing {id} from a summary that lacks it");
            return;
        };
        ids.remove(pos);
        if ids.is_empty() {
            self.leaves.remove(&leaf);
        }
        for level in 0..LEVEL_COUNT {
            let idx = index_at(h, level as u8);
            let slot = self.levels[level]
                .get_mut(&idx)
                .expect("aggregate present for resident id");
            slot.count -= 1;
            slot.hash ^= h;
            if slot.count == 0 {
                self.levels[level].remove(&idx);
            }
        }
    }

    /// `true` if `id` is resident in the tree.
    pub fn contains(&self, id: EventId) -> bool {
        self.leaves
            .get(&index_at(mix_event_id(id), LEAF_LEVEL))
            .is_some_and(|ids| ids.contains(&id))
    }

    /// Total ids in the tree.
    pub fn len(&self) -> u64 {
        self.levels[0].get(&0).map_or(0, |agg| agg.count)
    }

    /// `true` if the tree holds no ids.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The aggregate summary of one range (the empty summary for a
    /// range holding no ids).
    pub fn summarize(&self, range: RangeRef) -> RangeSummary {
        match self.levels[range.level() as usize].get(&range.index()) {
            Some(agg) => RangeSummary {
                range,
                count: agg.count,
                hash: agg.hash,
            },
            None => RangeSummary::empty(range),
        }
    }

    /// The root summary.
    pub fn root(&self) -> RangeSummary {
        self.summarize(RangeRef::ROOT)
    }

    /// The non-empty children of a range, in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if `range` is a leaf.
    pub fn children(&self, range: RangeRef) -> Vec<RangeSummary> {
        assert!(!range.is_leaf(), "leaf ranges have no children");
        let level = range.level() + 1;
        let start = range.index() << FANOUT_BITS;
        self.levels[level as usize]
            .range(start..start + FANOUT)
            .map(|(&index, agg)| RangeSummary {
                range: RangeRef { level, index },
                count: agg.count,
                hash: agg.hash,
            })
            .collect()
    }

    /// Every resident id inside `range`, ordered by (leaf index,
    /// insertion order) — deterministic for equal content regardless of
    /// how the tree was grown.
    pub fn ids_in(&self, range: RangeRef) -> Vec<EventId> {
        let (start, end) = range.leaf_span();
        self.leaves
            .range(start..end)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Expands a range into its complete id list.
    pub fn detail(&self, range: RangeRef) -> RangeDetail {
        RangeDetail {
            range,
            ids: self.ids_in(range),
        }
    }
}

/// The per-pattern forest maintained by [`crate::EventCache`]: one
/// [`CacheSummary`] tree per pattern that has at least one cached
/// event. An event carrying k patterns is resident in k trees, exactly
/// mirroring [`crate::EventCache::ids_matching`].
#[derive(Clone, Default, Debug)]
pub struct SummaryIndex {
    trees: BTreeMap<PatternId, CacheSummary>,
}

impl SummaryIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        SummaryIndex::default()
    }

    /// Records `id` under `pattern`.
    pub fn add(&mut self, pattern: PatternId, id: EventId) {
        self.trees.entry(pattern).or_default().add(id);
    }

    /// Removes `id` from `pattern`'s tree.
    pub fn remove(&mut self, pattern: PatternId, id: EventId) {
        if let Some(tree) = self.trees.get_mut(&pattern) {
            tree.remove(id);
            if tree.is_empty() {
                self.trees.remove(&pattern);
            }
        } else {
            debug_assert!(false, "removing {id} from absent pattern tree");
        }
    }

    /// Removes `id` from `pattern`'s tree if it is recorded there;
    /// returns whether anything was removed. Unlike
    /// [`SummaryIndex::remove`], an absent id is a clean no-op.
    pub fn discard(&mut self, pattern: PatternId, id: EventId) -> bool {
        if self.contains(pattern, id) {
            self.remove(pattern, id);
            true
        } else {
            false
        }
    }

    /// `true` if `id` is recorded under `pattern`.
    pub fn contains(&self, pattern: PatternId, id: EventId) -> bool {
        self.trees.get(&pattern).is_some_and(|t| t.contains(id))
    }

    /// The tree for `pattern`, if any event for it is cached.
    pub fn tree(&self, pattern: PatternId) -> Option<&CacheSummary> {
        self.trees.get(&pattern)
    }

    /// The root summary for `pattern` (empty if nothing is cached).
    pub fn root(&self, pattern: PatternId) -> RangeSummary {
        self.trees
            .get(&pattern)
            .map_or(RangeSummary::empty(RangeRef::ROOT), |t| t.root())
    }

    /// The aggregate of one range of `pattern`'s tree.
    pub fn summarize(&self, pattern: PatternId, range: RangeRef) -> RangeSummary {
        self.trees
            .get(&pattern)
            .map_or(RangeSummary::empty(range), |t| t.summarize(range))
    }

    /// Non-empty children of a range of `pattern`'s tree.
    pub fn children(&self, pattern: PatternId, range: RangeRef) -> Vec<RangeSummary> {
        self.trees
            .get(&pattern)
            .map_or_else(Vec::new, |t| t.children(range))
    }

    /// Resident ids of `pattern` inside `range`.
    pub fn ids_in(&self, pattern: PatternId, range: RangeRef) -> Vec<EventId> {
        self.trees
            .get(&pattern)
            .map_or_else(Vec::new, |t| t.ids_in(range))
    }
}

fn index_at(hash: u64, level: u8) -> u32 {
    let bits = FANOUT_BITS * level as u32;
    if bits == 0 {
        0
    } else {
        (hash >> (64 - bits)) as u32
    }
}

#[cfg(test)]
mod tests {
    use eps_overlay::NodeId;

    use super::*;

    fn id(source: u32, seq: u64) -> EventId {
        EventId::new(NodeId::new(source), seq)
    }

    #[test]
    fn mixer_is_deterministic_and_spreads() {
        let a = mix_event_id(id(1, 0));
        let b = mix_event_id(id(1, 1));
        let c = mix_event_id(id(2, 0));
        assert_eq!(a, mix_event_id(id(1, 0)));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Sequential ids from one source should land in different
        // top-level ranges often enough to keep the tree balanced.
        let top: std::collections::HashSet<u32> = (0..64)
            .map(|s| index_at(mix_event_id(id(7, s)), 1))
            .collect();
        assert!(top.len() > 8, "mixer clusters sequential seqs: {top:?}");
    }

    #[test]
    fn range_refinement_is_consistent() {
        let h = mix_event_id(id(3, 12));
        let mut range = RangeRef::ROOT;
        for level in 1..=LEAF_LEVEL {
            assert!(range.contains(h));
            let next = RangeRef::of(h, level);
            // The refinement is the child whose low bits match.
            assert_eq!(next, range.child(next.index() % FANOUT));
            range = next;
        }
        assert!(range.is_leaf());
        assert!(range.contains(h));
    }

    #[test]
    fn add_then_remove_restores_empty() {
        let mut tree = CacheSummary::default();
        for s in 0..20 {
            tree.add(id(4, s));
        }
        assert_eq!(tree.len(), 20);
        for s in 0..20 {
            tree.remove(id(4, s));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.root(), RangeSummary::empty(RangeRef::ROOT));
        assert!(tree.leaves.is_empty());
        assert!(tree.levels.iter().all(BTreeMap::is_empty));
    }

    #[test]
    fn children_aggregate_to_parent() {
        let mut tree = CacheSummary::default();
        for s in 0..100 {
            tree.add(id(9, s));
        }
        let mut ranges = vec![RangeRef::ROOT];
        while let Some(range) = ranges.pop() {
            if range.is_leaf() {
                continue;
            }
            let parent = tree.summarize(range);
            let children = tree.children(range);
            let count: u64 = children.iter().map(|c| c.count).sum();
            let hash = children.iter().fold(0u64, |acc, c| acc ^ c.hash);
            assert_eq!(count, parent.count);
            assert_eq!(hash, parent.hash);
            ranges.extend(children.iter().map(|c| c.range));
        }
    }

    #[test]
    fn summaries_are_order_independent() {
        let mut fwd = CacheSummary::default();
        let mut rev = CacheSummary::default();
        for s in 0..50 {
            fwd.add(id(2, s));
        }
        for s in (0..50).rev() {
            rev.add(id(2, s));
        }
        assert_eq!(fwd.root(), rev.root());
        assert_eq!(fwd.children(RangeRef::ROOT), rev.children(RangeRef::ROOT));
        // …and ids_in is deterministic for equal content regardless of
        // growth order only per-leaf up to insertion order; after full
        // reconciliation both caches hold equal sets, which is what the
        // aggregates certify.
        let mut a = fwd.ids_in(RangeRef::ROOT);
        let mut b = rev.ids_in(RangeRef::ROOT);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn single_differing_id_shows_in_exactly_one_child_per_level() {
        let mut a = CacheSummary::default();
        let mut b = CacheSummary::default();
        for s in 0..200 {
            a.add(id(5, s));
            b.add(id(5, s));
        }
        let extra = id(6, 999);
        a.add(extra);
        let mut range = RangeRef::ROOT;
        // Recursing on the single mismatching child reaches the leaf
        // holding the extra id — the O(log C) search path.
        while !range.is_leaf() {
            let diff: Vec<RangeRef> = (0..FANOUT)
                .map(|i| range.child(i))
                .filter(|&r| a.summarize(r) != b.summarize(r))
                .collect();
            assert_eq!(diff.len(), 1, "one differing child per level");
            range = diff[0];
        }
        assert!(a.ids_in(range).contains(&extra));
        assert!(!b.ids_in(range).contains(&extra));
    }

    #[test]
    fn detail_reports_empty_ranges() {
        let tree = CacheSummary::default();
        let d = tree.detail(RangeRef::ROOT);
        assert_eq!(d.range, RangeRef::ROOT);
        assert!(d.ids.is_empty());
    }

    #[test]
    fn index_tracks_patterns_independently() {
        let mut index = SummaryIndex::new();
        let p = PatternId::new(3);
        let q = PatternId::new(8);
        index.add(p, id(1, 0));
        index.add(p, id(1, 1));
        index.add(q, id(1, 0));
        assert_eq!(index.root(p).count, 2);
        assert_eq!(index.root(q).count, 1);
        index.remove(q, id(1, 0));
        assert_eq!(index.root(q).count, 0);
        assert!(index.tree(q).is_none());
        assert!(index.tree(p).is_some());
        assert_eq!(index.ids_in(p, RangeRef::ROOT).len(), 2);
    }

    #[test]
    fn ids_in_orders_by_leaf_then_insertion() {
        let mut tree = CacheSummary::default();
        let ids: Vec<EventId> = (0..30).map(|s| id(11, s)).collect();
        for &e in &ids {
            tree.add(e);
        }
        let listed = tree.ids_in(RangeRef::ROOT);
        assert_eq!(listed.len(), 30);
        // Within one leaf, insertion order is preserved.
        let mut per_leaf: BTreeMap<u32, Vec<EventId>> = BTreeMap::new();
        for &e in &ids {
            per_leaf
                .entry(index_at(mix_event_id(e), LEAF_LEVEL))
                .or_default()
                .push(e);
        }
        let expected: Vec<EventId> = per_leaf.into_values().flatten().collect();
        assert_eq!(listed, expected);
    }
}
