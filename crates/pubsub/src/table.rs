//! The subscription table kept by every dispatcher.
//!
//! In a subscription-forwarding scheme the table maps each pattern to
//! the set of *interfaces* from which that subscription was received:
//! either the local clients (collapsed to [`Interface::Local`], since
//! the paper ignores individual clients) or a neighboring dispatcher.
//! Events are forwarded along every interface whose pattern matches,
//! except the one they arrived from — laying event routes on the
//! reverse paths of subscription propagation.
//!
//! # Dense layout
//!
//! The paper's workload is a dense, small universe (Π = 70 patterns,
//! ≤ 3 patterns per event, overlay degree ≤ 10), and matching an event
//! against the table is the per-hop hot path of the whole simulator.
//! The table is therefore *slot-indexed* rather than tree-shaped:
//!
//! - each neighboring dispatcher gets a *slot* in a per-table registry
//!   kept sorted by [`NodeId`], so slot order **is** id order;
//! - the local-subscriber flags live in one bitset over the dense
//!   [`PatternId::index`] space;
//! - the per-pattern neighbor sets are stored structure-of-arrays: one
//!   byte per pattern while the table has at most eight neighbor slots
//!   ([`Rows::Narrow`] — the paper's trees have degree ≤ 4), upgraded
//!   in place to a vector of multi-word bitsets ([`NeighborMask`])
//!   the first time a ninth slot registers;
//! - matching an event is an OR of at most `max_patterns_per_event`
//!   rows followed by set-bit iteration — no tree walk, no sort, no
//!   dedup, no allocation.
//!
//! Subscription forwarding floods every subscribed pattern to every
//! dispatcher of the tree, so at large pattern universes the table is
//! the dominant per-node allocation: the narrow layout costs ~1.14
//! bytes per pattern instead of the ~40 an array-of-structs row would,
//! which is what makes 10⁵–10⁶-node populations fit in memory.
//!
//! Every observable iteration order is preserved across layouts:
//! neighbors enumerate in ascending id order (sorted slots), patterns
//! in ascending pattern-id order (dense index order). The golden
//! determinism suite pins this bit-for-bit.

use eps_overlay::NodeId;

use crate::event::Event;
use crate::pattern::PatternId;

/// Where a subscription came from, as seen by one dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Interface {
    /// Some local client is subscribed (the dispatcher itself is a
    /// subscriber, in the paper's stretched terminology).
    Local,
    /// The subscription was propagated by this neighboring dispatcher.
    Neighbor(NodeId),
}

/// Number of neighbor slots the narrow (one byte per pattern) row
/// layout can hold before upgrading to [`NeighborMask`] rows.
const NARROW_SLOTS: usize = 8;

/// A bitset over the neighbor slots of one [`SubscriptionTable`], used
/// by the wide row layout.
///
/// The first 64 slots live in an inline word (`w0`) — the common case
/// — and slots beyond that spill into a vector of further words, so
/// any degree is handled without a hardcoded 64-neighbor assumption.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct NeighborMask {
    w0: u64,
    rest: Vec<u64>,
}

impl NeighborMask {
    fn set(&mut self, bit: usize) {
        if bit < 64 {
            self.w0 |= 1u64 << bit;
        } else {
            let word = bit / 64 - 1;
            if word >= self.rest.len() {
                self.rest.resize(word + 1, 0);
            }
            self.rest[word] |= 1u64 << (bit % 64);
        }
    }

    fn clear(&mut self, bit: usize) {
        if bit < 64 {
            self.w0 &= !(1u64 << bit);
        } else if let Some(word) = self.rest.get_mut(bit / 64 - 1) {
            *word &= !(1u64 << (bit % 64));
        }
    }

    fn test(&self, bit: usize) -> bool {
        if bit < 64 {
            self.w0 & (1u64 << bit) != 0
        } else {
            self.rest
                .get(bit / 64 - 1)
                .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
        }
    }

    fn is_empty(&self) -> bool {
        self.w0 == 0 && self.rest.iter().all(|&w| w == 0)
    }

    /// Set bits in ascending order. Since slots are kept sorted by
    /// node id, this is ascending-[`NodeId`] order.
    fn iter(&self) -> SetBits<'_> {
        SetBits {
            word: self.w0,
            rest: self.rest.iter(),
            base: 0,
        }
    }

    /// Rebuilds the mask, sending each set bit `b` to `f(b)` (`None`
    /// drops it). Used only when the slot registry is renumbered — a
    /// setup or reconfiguration event, never the per-event hot path.
    fn remap<F: Fn(usize) -> Option<usize>>(&mut self, f: F) {
        let bits: Vec<usize> = self.iter().collect();
        self.w0 = 0;
        self.rest.clear();
        for b in bits {
            if let Some(nb) = f(b) {
                self.set(nb);
            }
        }
    }
}

/// Iterator over the set bits of a word sequence, ascending.
struct SetBits<'a> {
    word: u64,
    rest: std::slice::Iter<'a, u64>,
    base: usize,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.base + bit);
            }
            self.word = *self.rest.next()?;
            self.base += 64;
        }
    }
}

/// The per-pattern neighbor sets, structure-of-arrays.
#[derive(Clone, Debug)]
enum Rows {
    /// One byte per pattern: bit `s` set means neighbor slot `s` is
    /// subscribed. Valid while at most [`NARROW_SLOTS`] slots exist.
    Narrow(Vec<u8>),
    /// One multi-word bitset per pattern, for higher degrees.
    Wide(Vec<NeighborMask>),
}

/// A dispatcher's subscription table (dense slot-indexed layout; see
/// the module docs).
///
/// # Examples
///
/// ```
/// use eps_pubsub::{Interface, PatternId, SubscriptionTable};
/// use eps_overlay::NodeId;
///
/// let mut table = SubscriptionTable::new();
/// let p = PatternId::new(3);
/// table.insert(p, Interface::Local);
/// table.insert(p, Interface::Neighbor(NodeId::new(7)));
/// assert!(table.has_local(p));
/// assert_eq!(table.neighbors_for(p, None), vec![NodeId::new(7)]);
/// ```
#[derive(Clone, Debug)]
pub struct SubscriptionTable {
    /// Slot → neighbor id, kept sorted ascending so that set-bit
    /// iteration enumerates neighbors in id order.
    slots: Vec<NodeId>,
    /// Local-subscriber flags, one bit per pattern index.
    local: Vec<u64>,
    /// Per-pattern neighbor sets, indexed by [`PatternId::index`].
    rows: Rows,
    /// Number of pattern rows allocated (grown on demand, pre-sized by
    /// [`SubscriptionTable::with_dims`]).
    patterns: usize,
    /// Number of non-empty pattern rows (`len()`).
    known: usize,
}

impl Default for SubscriptionTable {
    fn default() -> Self {
        SubscriptionTable {
            slots: Vec::new(),
            local: Vec::new(),
            rows: Rows::Narrow(Vec::new()),
            patterns: 0,
            known: 0,
        }
    }
}

impl SubscriptionTable {
    /// Creates an empty table that grows its pattern rows and slot
    /// registry on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table pre-sized for `universe` patterns (one
    /// dense row each) and `degree_hint` neighbor slots — derived from
    /// [`crate::PatternSpace::universe`] and the overlay degree at
    /// setup. Purely an allocation hint: the table still grows past
    /// either dimension on demand.
    pub fn with_dims(universe: usize, degree_hint: usize) -> Self {
        SubscriptionTable {
            slots: Vec::with_capacity(degree_hint.min(1024)),
            local: vec![0; universe.div_ceil(64)],
            rows: if degree_hint <= NARROW_SLOTS {
                Rows::Narrow(vec![0; universe])
            } else {
                Rows::Wide(vec![NeighborMask::default(); universe])
            },
            patterns: universe,
            known: 0,
        }
    }

    /// Grows the pattern dimension to cover `idx`.
    fn ensure(&mut self, idx: usize) {
        if idx >= self.patterns {
            self.patterns = idx + 1;
            if self.local.len() * 64 < self.patterns {
                self.local.resize(self.patterns.div_ceil(64), 0);
            }
            match &mut self.rows {
                Rows::Narrow(rows) => rows.resize(idx + 1, 0),
                Rows::Wide(rows) => rows.resize(idx + 1, NeighborMask::default()),
            }
        }
    }

    fn local_test(&self, idx: usize) -> bool {
        self.local
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    fn row_is_empty(&self, idx: usize) -> bool {
        match &self.rows {
            Rows::Narrow(rows) => rows.get(idx).is_none_or(|&b| b == 0),
            Rows::Wide(rows) => rows.get(idx).is_none_or(|m| m.is_empty()),
        }
    }

    fn entry_is_empty(&self, idx: usize) -> bool {
        !self.local_test(idx) && self.row_is_empty(idx)
    }

    fn row_test(&self, idx: usize, slot: usize) -> bool {
        match &self.rows {
            Rows::Narrow(rows) => rows.get(idx).is_some_and(|&b| b & (1u8 << slot) != 0),
            Rows::Wide(rows) => rows.get(idx).is_some_and(|m| m.test(slot)),
        }
    }

    /// Set bits of one pattern row, ascending. Out-of-range patterns
    /// yield an empty iterator.
    fn row_bits(&self, idx: usize) -> SetBits<'_> {
        match &self.rows {
            Rows::Narrow(rows) => SetBits {
                word: rows.get(idx).copied().unwrap_or(0) as u64,
                rest: [].iter(),
                base: 0,
            },
            Rows::Wide(rows) => match rows.get(idx) {
                Some(m) => m.iter(),
                None => SetBits {
                    word: 0,
                    rest: [].iter(),
                    base: 0,
                },
            },
        }
    }

    /// Converts narrow byte rows to wide mask rows (the first time a
    /// ninth neighbor slot registers). Content-preserving.
    fn upgrade_to_wide(&mut self) {
        if let Rows::Narrow(rows) = &self.rows {
            let wide = rows
                .iter()
                .map(|&b| NeighborMask {
                    w0: b as u64,
                    rest: Vec::new(),
                })
                .collect();
            self.rows = Rows::Wide(wide);
        }
    }

    /// The slot of `neighbor`, if registered.
    fn slot_of(&self, neighbor: NodeId) -> Option<usize> {
        self.slots.binary_search(&neighbor).ok()
    }

    /// Registers `neighbor` and returns its slot. Slots stay sorted by
    /// node id; inserting in the middle renumbers the higher slots and
    /// remaps every pattern row — rare (subscription setup or overlay
    /// reconfiguration), never on the event-matching hot path.
    fn register(&mut self, neighbor: NodeId) -> usize {
        match self.slots.binary_search(&neighbor) {
            Ok(pos) => pos,
            Err(pos) => {
                if matches!(self.rows, Rows::Narrow(_)) && self.slots.len() == NARROW_SLOTS {
                    self.upgrade_to_wide();
                }
                self.slots.insert(pos, neighbor);
                if pos + 1 < self.slots.len() {
                    match &mut self.rows {
                        Rows::Narrow(rows) => {
                            // Bits at or above `pos` move up one slot.
                            // Pre-insert bits occupy slots below the
                            // old length (< NARROW_SLOTS), so the
                            // shift cannot overflow the byte.
                            let low = (1u8 << pos) - 1;
                            for b in rows.iter_mut() {
                                *b = (*b & low) | ((*b & !low) << 1);
                            }
                        }
                        Rows::Wide(rows) => {
                            for mask in rows.iter_mut() {
                                mask.remap(|b| Some(if b >= pos { b + 1 } else { b }));
                            }
                        }
                    }
                }
                pos
            }
        }
    }

    /// Records that `pattern` is subscribed via `iface`. Returns `true`
    /// if this is new information (used to decide whether to propagate
    /// further).
    pub fn insert(&mut self, pattern: PatternId, iface: Interface) -> bool {
        let slot = match iface {
            Interface::Local => None,
            Interface::Neighbor(n) => Some(self.register(n)),
        };
        let idx = pattern.index();
        self.ensure(idx);
        let was_empty = self.entry_is_empty(idx);
        let inserted = match slot {
            None => {
                let word = &mut self.local[idx / 64];
                let bit = 1u64 << (idx % 64);
                let new = *word & bit == 0;
                *word |= bit;
                new
            }
            Some(slot) => match &mut self.rows {
                Rows::Narrow(rows) => {
                    let bit = 1u8 << slot;
                    let new = rows[idx] & bit == 0;
                    rows[idx] |= bit;
                    new
                }
                Rows::Wide(rows) => {
                    let new = !rows[idx].test(slot);
                    rows[idx].set(slot);
                    new
                }
            },
        };
        if inserted && was_empty {
            self.known += 1;
        }
        inserted
    }

    /// Removes a subscription entry. Returns `true` if it was present.
    pub fn remove(&mut self, pattern: PatternId, iface: Interface) -> bool {
        let slot = match iface {
            Interface::Local => None,
            Interface::Neighbor(n) => match self.slot_of(n) {
                Some(slot) => Some(slot),
                None => return false,
            },
        };
        let idx = pattern.index();
        if idx >= self.patterns {
            return false;
        }
        let removed = match slot {
            None => {
                let word = &mut self.local[idx / 64];
                let bit = 1u64 << (idx % 64);
                let was = *word & bit != 0;
                *word &= !bit;
                was
            }
            Some(slot) => match &mut self.rows {
                Rows::Narrow(rows) => {
                    let bit = 1u8 << slot;
                    let was = rows[idx] & bit != 0;
                    rows[idx] &= !bit;
                    was
                }
                Rows::Wide(rows) => {
                    let was = rows[idx].test(slot);
                    rows[idx].clear(slot);
                    was
                }
            },
        };
        if removed && self.entry_is_empty(idx) {
            self.known -= 1;
        }
        removed
    }

    /// Drops every entry learned from `neighbor` (when the link to it
    /// breaks). Returns the affected patterns, in ascending pattern-id
    /// order (dense row order).
    pub fn remove_neighbor(&mut self, neighbor: NodeId) -> Vec<PatternId> {
        let Some(slot) = self.slot_of(neighbor) else {
            return Vec::new();
        };
        let mut affected = Vec::new();
        for idx in 0..self.patterns {
            if self.row_test(idx, slot) {
                match &mut self.rows {
                    Rows::Narrow(rows) => rows[idx] &= !(1u8 << slot),
                    Rows::Wide(rows) => rows[idx].clear(slot),
                }
                affected.push(PatternId::new(idx as u16));
                if self.entry_is_empty(idx) {
                    self.known -= 1;
                }
            }
        }
        // Retire the slot and renumber the higher ones so the registry
        // never accumulates dead neighbors across reconfigurations.
        self.slots.remove(slot);
        match &mut self.rows {
            Rows::Narrow(rows) => {
                let low = (1u8 << slot) - 1;
                for b in rows.iter_mut() {
                    *b = (*b & low) | ((*b >> (slot + 1)) << slot);
                }
            }
            Rows::Wide(rows) => {
                for mask in rows.iter_mut() {
                    mask.remap(|b| match b.cmp(&slot) {
                        std::cmp::Ordering::Less => Some(b),
                        std::cmp::Ordering::Equal => None,
                        std::cmp::Ordering::Greater => Some(b - 1),
                    });
                }
            }
        }
        affected
    }

    /// `true` if a local client subscribes to `pattern`.
    pub fn has_local(&self, pattern: PatternId) -> bool {
        self.local_test(pattern.index())
    }

    /// `true` if the table has any entry (local or remote) for
    /// `pattern`.
    pub fn knows(&self, pattern: PatternId) -> bool {
        let idx = pattern.index();
        idx < self.patterns && !self.entry_is_empty(idx)
    }

    /// The neighbor interfaces subscribed to `pattern`, excluding
    /// `exclude` (typically the message's arrival interface), in id
    /// order.
    pub fn neighbors_for(&self, pattern: PatternId, exclude: Option<NodeId>) -> Vec<NodeId> {
        self.neighbors_for_iter(pattern, exclude).collect()
    }

    /// Allocation-free variant of [`SubscriptionTable::neighbors_for`]:
    /// iterates the subscribed neighbor interfaces in id order without
    /// materializing a `Vec`.
    pub fn neighbors_for_iter(
        &self,
        pattern: PatternId,
        exclude: Option<NodeId>,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.row_bits(pattern.index())
            .map(|slot| self.slots[slot])
            .filter(move |&n| Some(n) != exclude)
    }

    /// The distinct neighbors an event must be forwarded to: the union
    /// of [`SubscriptionTable::neighbors_for`] over the event's
    /// patterns, minus the arrival interface.
    pub fn matching_neighbors(&self, event: &Event, from: Option<NodeId>) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.matching_neighbors_into(event, from, &mut out);
        out
    }

    /// Like [`SubscriptionTable::matching_neighbors`], but reuses the
    /// caller's buffer: `out` is cleared and refilled, so a dispatcher
    /// forwarding many events allocates nothing in steady state.
    ///
    /// This is the per-hop hot path: an OR of the event's pattern
    /// rows, then set-bit iteration. The union is deduplicated and in
    /// ascending id order by construction — no sort, no dedup.
    pub fn matching_neighbors_into(
        &self,
        event: &Event,
        from: Option<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        match &self.rows {
            Rows::Narrow(rows) => {
                let mut acc = 0u64;
                for p in event.patterns() {
                    acc |= rows.get(p.index()).copied().unwrap_or(0) as u64;
                }
                if let Some(f) = from {
                    if let Some(slot) = self.slot_of(f) {
                        acc &= !(1u64 << slot);
                    }
                }
                while acc != 0 {
                    let slot = acc.trailing_zeros() as usize;
                    acc &= acc - 1;
                    out.push(self.slots[slot]);
                }
            }
            Rows::Wide(rows) if self.slots.len() <= 64 => {
                // Single-word fast path: the whole neighbor set fits w0.
                let mut acc = 0u64;
                for p in event.patterns() {
                    if let Some(m) = rows.get(p.index()) {
                        acc |= m.w0;
                    }
                }
                if let Some(f) = from {
                    if let Some(slot) = self.slot_of(f) {
                        acc &= !(1u64 << slot);
                    }
                }
                while acc != 0 {
                    let slot = acc.trailing_zeros() as usize;
                    acc &= acc - 1;
                    out.push(self.slots[slot]);
                }
            }
            Rows::Wide(rows) => {
                let mut acc = NeighborMask::default();
                for p in event.patterns() {
                    if let Some(m) = rows.get(p.index()) {
                        acc.w0 |= m.w0;
                        if acc.rest.len() < m.rest.len() {
                            acc.rest.resize(m.rest.len(), 0);
                        }
                        for (a, &w) in acc.rest.iter_mut().zip(&m.rest) {
                            *a |= w;
                        }
                    }
                }
                if let Some(f) = from {
                    if let Some(slot) = self.slot_of(f) {
                        acc.clear(slot);
                    }
                }
                out.extend(acc.iter().map(|slot| self.slots[slot]));
            }
        }
    }

    /// `true` if the event matches a local subscription.
    pub fn matches_locally(&self, event: &Event) -> bool {
        event.patterns().any(|p| self.has_local(p))
    }

    /// Patterns with a local subscription, in order.
    pub fn local_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        // Dense row order is ascending pattern-id order.
        (0..self.patterns)
            .filter(|&idx| self.local_test(idx))
            .map(|idx| PatternId::new(idx as u16))
    }

    /// Every pattern known to the table — locally subscribed or
    /// learned through forwarding. The push algorithm draws its gossip
    /// pattern from this set ("p is selected by considering the whole
    /// subscription table").
    pub fn all_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        // Dense row order is ascending pattern-id order.
        (0..self.patterns)
            .filter(|&idx| !self.entry_is_empty(idx))
            .map(|idx| PatternId::new(idx as u16))
    }

    /// Number of patterns known.
    pub fn len(&self) -> usize {
        self.known
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.known == 0
    }
}

/// Semantic equality: same patterns, each with the same local flag and
/// neighbor set. Two tables built through different insertion
/// histories (and therefore with different slot registries, row
/// layouts, or row capacities) compare equal when their observable
/// content matches.
impl PartialEq for SubscriptionTable {
    fn eq(&self, other: &Self) -> bool {
        if self.known != other.known {
            return false;
        }
        self.all_patterns().eq(other.all_patterns())
            && self.all_patterns().all(|p| {
                self.has_local(p) == other.has_local(p)
                    && self
                        .neighbors_for_iter(p, None)
                        .eq(other.neighbors_for_iter(p, None))
            })
    }
}

impl Eq for SubscriptionTable {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn ev(patterns: &[u16]) -> Event {
        Event::new(
            EventId::new(NodeId::new(0), 1),
            patterns.iter().map(|&p| (PatternId::new(p), 0)).collect(),
        )
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        assert!(t.insert(p, Interface::Local));
        assert!(!t.insert(p, Interface::Local));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_cleans_up_empty_patterns() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        t.insert(p, Interface::Local);
        assert!(t.remove(p, Interface::Local));
        assert!(!t.remove(p, Interface::Local));
        assert!(t.is_empty());
        assert!(!t.knows(p));
    }

    #[test]
    fn neighbors_for_excludes_arrival_interface() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(2);
        t.insert(p, Interface::Neighbor(NodeId::new(1)));
        t.insert(p, Interface::Neighbor(NodeId::new(2)));
        t.insert(p, Interface::Local);
        assert_eq!(
            t.neighbors_for(p, Some(NodeId::new(1))),
            vec![NodeId::new(2)]
        );
        assert_eq!(t.neighbors_for(p, None).len(), 2);
    }

    #[test]
    fn matching_neighbors_dedups_across_patterns() {
        let mut t = SubscriptionTable::new();
        let n = NodeId::new(9);
        t.insert(PatternId::new(1), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Neighbor(n));
        let e = ev(&[1, 2]);
        assert_eq!(t.matching_neighbors(&e, None), vec![n]);
        assert_eq!(t.matching_neighbors(&e, Some(n)), Vec::<NodeId>::new());
    }

    #[test]
    fn matches_locally_uses_local_interface_only() {
        let mut t = SubscriptionTable::new();
        t.insert(PatternId::new(1), Interface::Neighbor(NodeId::new(3)));
        assert!(!t.matches_locally(&ev(&[1])));
        t.insert(PatternId::new(1), Interface::Local);
        assert!(t.matches_locally(&ev(&[1])));
        assert!(!t.matches_locally(&ev(&[2])));
    }

    #[test]
    fn remove_neighbor_drops_all_its_entries() {
        let mut t = SubscriptionTable::new();
        let n = NodeId::new(4);
        t.insert(PatternId::new(1), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Local);
        let affected = t.remove_neighbor(n);
        assert_eq!(affected, vec![PatternId::new(1), PatternId::new(2)]);
        assert!(!t.knows(PatternId::new(1)));
        assert!(t.has_local(PatternId::new(2)));
    }

    #[test]
    fn pattern_views_are_ordered() {
        let mut t = SubscriptionTable::new();
        t.insert(PatternId::new(5), Interface::Local);
        t.insert(PatternId::new(1), Interface::Neighbor(NodeId::new(2)));
        t.insert(PatternId::new(3), Interface::Local);
        let local: Vec<_> = t.local_patterns().collect();
        assert_eq!(local, vec![PatternId::new(3), PatternId::new(5)]);
        let all: Vec<_> = t.all_patterns().collect();
        assert_eq!(
            all,
            vec![PatternId::new(1), PatternId::new(3), PatternId::new(5)]
        );
    }

    #[test]
    fn neighbor_enumeration_is_id_ordered_regardless_of_insertion_order() {
        // Out-of-order registrations renumber slots; the enumeration
        // order must stay ascending by node id.
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(0);
        for raw in [9u32, 2, 7, 0, 5] {
            t.insert(p, Interface::Neighbor(NodeId::new(raw)));
        }
        let ids: Vec<u32> = t
            .neighbors_for_iter(p, None)
            .map(|n| n.index() as u32)
            .collect();
        assert_eq!(ids, vec![0, 2, 5, 7, 9]);
    }

    #[test]
    fn degree_above_64_spills_into_extra_words() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        let q = PatternId::new(2);
        for raw in 0..130u32 {
            let target = if raw % 2 == 0 { p } else { q };
            t.insert(target, Interface::Neighbor(NodeId::new(raw)));
        }
        assert_eq!(t.neighbors_for(p, None).len(), 65);
        assert_eq!(t.neighbors_for(q, None).len(), 65);
        let union = t.matching_neighbors(&ev(&[1, 2]), None);
        assert_eq!(union.len(), 130);
        assert!(union.windows(2).all(|w| w[0] < w[1]), "ascending id order");
        // Exclusion works past the inline word too.
        let minus = t.matching_neighbors(&ev(&[1, 2]), Some(NodeId::new(100)));
        assert_eq!(minus.len(), 129);
        assert!(!minus.contains(&NodeId::new(100)));
        // Removing a low slot renumbers the spilled bits correctly.
        let affected = t.remove_neighbor(NodeId::new(0));
        assert_eq!(affected, vec![p]);
        assert_eq!(t.matching_neighbors(&ev(&[1, 2]), None).len(), 129);
    }

    #[test]
    fn with_dims_preallocates_without_changing_behavior() {
        let mut a = SubscriptionTable::with_dims(70, 10);
        let mut b = SubscriptionTable::new();
        for (p, n) in [(3u16, 5u32), (69, 1), (3, 9)] {
            assert_eq!(
                a.insert(PatternId::new(p), Interface::Neighbor(NodeId::new(n))),
                b.insert(PatternId::new(p), Interface::Neighbor(NodeId::new(n)))
            );
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn equality_is_semantic_not_structural() {
        // Same content via different insertion orders (and therefore
        // different registry histories) compares equal.
        let mut a = SubscriptionTable::new();
        let mut b = SubscriptionTable::with_dims(16, 4);
        for n in [3u32, 1, 2] {
            a.insert(PatternId::new(7), Interface::Neighbor(NodeId::new(n)));
        }
        for n in [1u32, 2, 3] {
            b.insert(PatternId::new(7), Interface::Neighbor(NodeId::new(n)));
        }
        assert_eq!(a, b);
        b.insert(PatternId::new(7), Interface::Local);
        assert_ne!(a, b);
    }

    #[test]
    fn narrow_rows_upgrade_to_wide_at_the_ninth_slot() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(3);
        // Register nine neighbors out of order, crossing the upgrade
        // boundary mid-insert; content must be preserved throughout.
        for raw in [8u32, 1, 6, 3, 9, 0, 5, 7, 2] {
            t.insert(p, Interface::Neighbor(NodeId::new(raw)));
        }
        let ids: Vec<u32> = t
            .neighbors_for_iter(p, None)
            .map(|n| n.index() as u32)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
        // And a reference table built post-upgrade agrees semantically.
        let mut r = SubscriptionTable::new();
        for raw in 0..=9u32 {
            if raw != 4 {
                r.insert(p, Interface::Neighbor(NodeId::new(raw)));
            }
        }
        assert_eq!(t, r);
    }

    #[test]
    fn narrow_mid_insert_renumbers_and_removal_collapses() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(0);
        let q = PatternId::new(1);
        t.insert(p, Interface::Neighbor(NodeId::new(10)));
        t.insert(q, Interface::Neighbor(NodeId::new(30)));
        // Mid-insert between the two registered slots.
        t.insert(p, Interface::Neighbor(NodeId::new(20)));
        assert_eq!(
            t.neighbors_for(p, None),
            vec![NodeId::new(10), NodeId::new(20)]
        );
        assert_eq!(t.neighbors_for(q, None), vec![NodeId::new(30)]);
        // Removing the lowest slot shifts the others down.
        let affected = t.remove_neighbor(NodeId::new(10));
        assert_eq!(affected, vec![p]);
        assert_eq!(t.neighbors_for(p, None), vec![NodeId::new(20)]);
        assert_eq!(t.neighbors_for(q, None), vec![NodeId::new(30)]);
    }
}
