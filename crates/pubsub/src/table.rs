//! The subscription table kept by every dispatcher.
//!
//! In a subscription-forwarding scheme the table maps each pattern to
//! the set of *interfaces* from which that subscription was received:
//! either the local clients (collapsed to [`Interface::Local`], since
//! the paper ignores individual clients) or a neighboring dispatcher.
//! Events are forwarded along every interface whose pattern matches,
//! except the one they arrived from — laying event routes on the
//! reverse paths of subscription propagation.
//!
//! # Dense layout
//!
//! The paper's workload is a dense, small universe (Π = 70 patterns,
//! ≤ 3 patterns per event, overlay degree ≤ 10), and matching an event
//! against the table is the per-hop hot path of the whole simulator.
//! The table is therefore *slot-indexed* rather than tree-shaped:
//!
//! - each neighboring dispatcher gets a *slot* in a per-table registry
//!   kept sorted by [`NodeId`], so slot order **is** id order;
//! - each pattern is a dense [`PatternId::index`]-addressed entry
//!   holding a local-subscriber flag and a *bitset* over the neighbor
//!   slots ([`NeighborMask`], one inline word plus a spill vector for
//!   degrees above 64);
//! - matching an event is an OR of at most `max_patterns_per_event`
//!   masks followed by set-bit iteration — no tree walk, no sort, no
//!   dedup, no allocation.
//!
//! Every observable iteration order of the previous `BTreeMap`-based
//! table is preserved: neighbors enumerate in ascending id order
//! (sorted slots), patterns in ascending pattern-id order (dense index
//! order). The golden determinism suite pins this bit-for-bit.

use eps_overlay::NodeId;

use crate::event::Event;
use crate::pattern::PatternId;

/// Where a subscription came from, as seen by one dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Interface {
    /// Some local client is subscribed (the dispatcher itself is a
    /// subscriber, in the paper's stretched terminology).
    Local,
    /// The subscription was propagated by this neighboring dispatcher.
    Neighbor(NodeId),
}

/// A bitset over the neighbor slots of one [`SubscriptionTable`].
///
/// The first 64 slots live in an inline word (`w0`) — the common case,
/// since the paper's overlays have degree ≤ 10 — and slots beyond that
/// spill into a vector of further words, so any degree is handled
/// without a hardcoded 64-neighbor assumption.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct NeighborMask {
    w0: u64,
    rest: Vec<u64>,
}

impl NeighborMask {
    fn set(&mut self, bit: usize) {
        if bit < 64 {
            self.w0 |= 1u64 << bit;
        } else {
            let word = bit / 64 - 1;
            if word >= self.rest.len() {
                self.rest.resize(word + 1, 0);
            }
            self.rest[word] |= 1u64 << (bit % 64);
        }
    }

    fn clear(&mut self, bit: usize) {
        if bit < 64 {
            self.w0 &= !(1u64 << bit);
        } else if let Some(word) = self.rest.get_mut(bit / 64 - 1) {
            *word &= !(1u64 << (bit % 64));
        }
    }

    fn test(&self, bit: usize) -> bool {
        if bit < 64 {
            self.w0 & (1u64 << bit) != 0
        } else {
            self.rest
                .get(bit / 64 - 1)
                .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
        }
    }

    fn is_empty(&self) -> bool {
        self.w0 == 0 && self.rest.iter().all(|&w| w == 0)
    }

    /// Set bits in ascending order. Since slots are kept sorted by
    /// node id, this is ascending-[`NodeId`] order.
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.w0)
            .chain(self.rest.iter().copied())
            .enumerate()
            .flat_map(|(wi, mut w)| {
                std::iter::from_fn(move || {
                    if w == 0 {
                        return None;
                    }
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                })
            })
    }

    /// Rebuilds the mask, sending each set bit `b` to `f(b)` (`None`
    /// drops it). Used only when the slot registry is renumbered — a
    /// setup or reconfiguration event, never the per-event hot path.
    fn remap<F: Fn(usize) -> Option<usize>>(&mut self, f: F) {
        let bits: Vec<usize> = self.iter().collect();
        self.w0 = 0;
        self.rest.clear();
        for b in bits {
            if let Some(nb) = f(b) {
                self.set(nb);
            }
        }
    }
}

/// One pattern's row: the local-subscriber flag plus the neighbor
/// bitset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct PatternEntry {
    local: bool,
    mask: NeighborMask,
}

impl PatternEntry {
    fn is_empty(&self) -> bool {
        !self.local && self.mask.is_empty()
    }
}

/// A dispatcher's subscription table (dense slot-indexed layout; see
/// the module docs).
///
/// # Examples
///
/// ```
/// use eps_pubsub::{Interface, PatternId, SubscriptionTable};
/// use eps_overlay::NodeId;
///
/// let mut table = SubscriptionTable::new();
/// let p = PatternId::new(3);
/// table.insert(p, Interface::Local);
/// table.insert(p, Interface::Neighbor(NodeId::new(7)));
/// assert!(table.has_local(p));
/// assert_eq!(table.neighbors_for(p, None), vec![NodeId::new(7)]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubscriptionTable {
    /// Slot → neighbor id, kept sorted ascending so that set-bit
    /// iteration enumerates neighbors in id order.
    slots: Vec<NodeId>,
    /// Pattern rows, indexed by [`PatternId::index`]; grown on demand,
    /// pre-sized by [`SubscriptionTable::with_dims`].
    entries: Vec<PatternEntry>,
    /// Number of non-empty pattern rows (`len()`).
    known: usize,
}

impl SubscriptionTable {
    /// Creates an empty table that grows its pattern rows and slot
    /// registry on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table pre-sized for `universe` patterns (one
    /// dense row each) and `degree_hint` neighbor slots — derived from
    /// [`crate::PatternSpace::universe`] and the overlay degree at
    /// setup. Purely an allocation hint: the table still grows past
    /// either dimension on demand.
    pub fn with_dims(universe: usize, degree_hint: usize) -> Self {
        SubscriptionTable {
            slots: Vec::with_capacity(degree_hint),
            entries: vec![PatternEntry::default(); universe],
            known: 0,
        }
    }

    /// The slot of `neighbor`, if registered.
    fn slot_of(&self, neighbor: NodeId) -> Option<usize> {
        self.slots.binary_search(&neighbor).ok()
    }

    /// Registers `neighbor` and returns its slot. Slots stay sorted by
    /// node id; inserting in the middle renumbers the higher slots and
    /// remaps every pattern mask — rare (subscription setup or overlay
    /// reconfiguration), never on the event-matching hot path.
    fn register(&mut self, neighbor: NodeId) -> usize {
        match self.slots.binary_search(&neighbor) {
            Ok(pos) => pos,
            Err(pos) => {
                self.slots.insert(pos, neighbor);
                if pos + 1 < self.slots.len() {
                    for entry in &mut self.entries {
                        entry.mask.remap(|b| Some(if b >= pos { b + 1 } else { b }));
                    }
                }
                pos
            }
        }
    }

    fn entry_mut(&mut self, pattern: PatternId) -> &mut PatternEntry {
        let idx = pattern.index();
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, PatternEntry::default());
        }
        &mut self.entries[idx]
    }

    /// Records that `pattern` is subscribed via `iface`. Returns `true`
    /// if this is new information (used to decide whether to propagate
    /// further).
    pub fn insert(&mut self, pattern: PatternId, iface: Interface) -> bool {
        let slot = match iface {
            Interface::Local => None,
            Interface::Neighbor(n) => Some(self.register(n)),
        };
        let entry = self.entry_mut(pattern);
        let was_empty = entry.is_empty();
        let inserted = match slot {
            None => !std::mem::replace(&mut entry.local, true),
            Some(slot) => {
                let new = !entry.mask.test(slot);
                entry.mask.set(slot);
                new
            }
        };
        if inserted && was_empty {
            self.known += 1;
        }
        inserted
    }

    /// Removes a subscription entry. Returns `true` if it was present.
    pub fn remove(&mut self, pattern: PatternId, iface: Interface) -> bool {
        let slot = match iface {
            Interface::Local => None,
            Interface::Neighbor(n) => match self.slot_of(n) {
                Some(slot) => Some(slot),
                None => return false,
            },
        };
        let Some(entry) = self.entries.get_mut(pattern.index()) else {
            return false;
        };
        let removed = match slot {
            None => std::mem::replace(&mut entry.local, false),
            Some(slot) => {
                let was = entry.mask.test(slot);
                entry.mask.clear(slot);
                was
            }
        };
        if removed && entry.is_empty() {
            self.known -= 1;
        }
        removed
    }

    /// Drops every entry learned from `neighbor` (when the link to it
    /// breaks). Returns the affected patterns, in ascending pattern-id
    /// order (dense row order).
    pub fn remove_neighbor(&mut self, neighbor: NodeId) -> Vec<PatternId> {
        let Some(slot) = self.slot_of(neighbor) else {
            return Vec::new();
        };
        let mut affected = Vec::new();
        for (idx, entry) in self.entries.iter_mut().enumerate() {
            if entry.mask.test(slot) {
                entry.mask.clear(slot);
                affected.push(PatternId::new(idx as u16));
                if entry.is_empty() {
                    self.known -= 1;
                }
            }
        }
        // Retire the slot and renumber the higher ones so the registry
        // never accumulates dead neighbors across reconfigurations.
        self.slots.remove(slot);
        for entry in &mut self.entries {
            entry.mask.remap(|b| match b.cmp(&slot) {
                std::cmp::Ordering::Less => Some(b),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(b - 1),
            });
        }
        affected
    }

    /// `true` if a local client subscribes to `pattern`.
    pub fn has_local(&self, pattern: PatternId) -> bool {
        self.entries.get(pattern.index()).is_some_and(|e| e.local)
    }

    /// `true` if the table has any entry (local or remote) for
    /// `pattern`.
    pub fn knows(&self, pattern: PatternId) -> bool {
        self.entries
            .get(pattern.index())
            .is_some_and(|e| !e.is_empty())
    }

    /// The neighbor interfaces subscribed to `pattern`, excluding
    /// `exclude` (typically the message's arrival interface), in id
    /// order.
    pub fn neighbors_for(&self, pattern: PatternId, exclude: Option<NodeId>) -> Vec<NodeId> {
        self.neighbors_for_iter(pattern, exclude).collect()
    }

    /// Allocation-free variant of [`SubscriptionTable::neighbors_for`]:
    /// iterates the subscribed neighbor interfaces in id order without
    /// materializing a `Vec`.
    pub fn neighbors_for_iter(
        &self,
        pattern: PatternId,
        exclude: Option<NodeId>,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .get(pattern.index())
            .into_iter()
            .flat_map(|e| e.mask.iter())
            .map(|slot| self.slots[slot])
            .filter(move |&n| Some(n) != exclude)
    }

    /// The distinct neighbors an event must be forwarded to: the union
    /// of [`SubscriptionTable::neighbors_for`] over the event's
    /// patterns, minus the arrival interface.
    pub fn matching_neighbors(&self, event: &Event, from: Option<NodeId>) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.matching_neighbors_into(event, from, &mut out);
        out
    }

    /// Like [`SubscriptionTable::matching_neighbors`], but reuses the
    /// caller's buffer: `out` is cleared and refilled, so a dispatcher
    /// forwarding many events allocates nothing in steady state.
    ///
    /// This is the per-hop hot path: an OR of the event's pattern
    /// masks, then set-bit iteration. The union is deduplicated and in
    /// ascending id order by construction — no sort, no dedup.
    pub fn matching_neighbors_into(
        &self,
        event: &Event,
        from: Option<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if self.slots.len() <= 64 {
            // Single-word fast path: the whole neighbor set fits w0.
            let mut acc = 0u64;
            for p in event.patterns() {
                if let Some(e) = self.entries.get(p.index()) {
                    acc |= e.mask.w0;
                }
            }
            if let Some(f) = from {
                if let Some(slot) = self.slot_of(f) {
                    acc &= !(1u64 << slot);
                }
            }
            while acc != 0 {
                let slot = acc.trailing_zeros() as usize;
                acc &= acc - 1;
                out.push(self.slots[slot]);
            }
        } else {
            let mut acc = NeighborMask::default();
            for p in event.patterns() {
                if let Some(e) = self.entries.get(p.index()) {
                    acc.w0 |= e.mask.w0;
                    if acc.rest.len() < e.mask.rest.len() {
                        acc.rest.resize(e.mask.rest.len(), 0);
                    }
                    for (a, &w) in acc.rest.iter_mut().zip(&e.mask.rest) {
                        *a |= w;
                    }
                }
            }
            if let Some(f) = from {
                if let Some(slot) = self.slot_of(f) {
                    acc.clear(slot);
                }
            }
            out.extend(acc.iter().map(|slot| self.slots[slot]));
        }
    }

    /// `true` if the event matches a local subscription.
    pub fn matches_locally(&self, event: &Event) -> bool {
        event.patterns().any(|p| self.has_local(p))
    }

    /// Patterns with a local subscription, in order.
    pub fn local_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        // Dense row order is ascending pattern-id order.
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.local)
            .map(|(idx, _)| PatternId::new(idx as u16))
    }

    /// Every pattern known to the table — locally subscribed or
    /// learned through forwarding. The push algorithm draws its gossip
    /// pattern from this set ("p is selected by considering the whole
    /// subscription table").
    pub fn all_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        // Dense row order is ascending pattern-id order.
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_empty())
            .map(|(idx, _)| PatternId::new(idx as u16))
    }

    /// Number of patterns known.
    pub fn len(&self) -> usize {
        self.known
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.known == 0
    }
}

/// Semantic equality: same patterns, each with the same local flag and
/// neighbor set. Two tables built through different insertion
/// histories (and therefore with different slot registries or row
/// capacities) compare equal when their observable content matches.
impl PartialEq for SubscriptionTable {
    fn eq(&self, other: &Self) -> bool {
        if self.known != other.known {
            return false;
        }
        self.all_patterns().eq(other.all_patterns())
            && self.all_patterns().all(|p| {
                self.has_local(p) == other.has_local(p)
                    && self
                        .neighbors_for_iter(p, None)
                        .eq(other.neighbors_for_iter(p, None))
            })
    }
}

impl Eq for SubscriptionTable {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn ev(patterns: &[u16]) -> Event {
        Event::new(
            EventId::new(NodeId::new(0), 1),
            patterns.iter().map(|&p| (PatternId::new(p), 0)).collect(),
        )
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        assert!(t.insert(p, Interface::Local));
        assert!(!t.insert(p, Interface::Local));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_cleans_up_empty_patterns() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        t.insert(p, Interface::Local);
        assert!(t.remove(p, Interface::Local));
        assert!(!t.remove(p, Interface::Local));
        assert!(t.is_empty());
        assert!(!t.knows(p));
    }

    #[test]
    fn neighbors_for_excludes_arrival_interface() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(2);
        t.insert(p, Interface::Neighbor(NodeId::new(1)));
        t.insert(p, Interface::Neighbor(NodeId::new(2)));
        t.insert(p, Interface::Local);
        assert_eq!(
            t.neighbors_for(p, Some(NodeId::new(1))),
            vec![NodeId::new(2)]
        );
        assert_eq!(t.neighbors_for(p, None).len(), 2);
    }

    #[test]
    fn matching_neighbors_dedups_across_patterns() {
        let mut t = SubscriptionTable::new();
        let n = NodeId::new(9);
        t.insert(PatternId::new(1), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Neighbor(n));
        let e = ev(&[1, 2]);
        assert_eq!(t.matching_neighbors(&e, None), vec![n]);
        assert_eq!(t.matching_neighbors(&e, Some(n)), Vec::<NodeId>::new());
    }

    #[test]
    fn matches_locally_uses_local_interface_only() {
        let mut t = SubscriptionTable::new();
        t.insert(PatternId::new(1), Interface::Neighbor(NodeId::new(3)));
        assert!(!t.matches_locally(&ev(&[1])));
        t.insert(PatternId::new(1), Interface::Local);
        assert!(t.matches_locally(&ev(&[1])));
        assert!(!t.matches_locally(&ev(&[2])));
    }

    #[test]
    fn remove_neighbor_drops_all_its_entries() {
        let mut t = SubscriptionTable::new();
        let n = NodeId::new(4);
        t.insert(PatternId::new(1), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Local);
        let affected = t.remove_neighbor(n);
        assert_eq!(affected, vec![PatternId::new(1), PatternId::new(2)]);
        assert!(!t.knows(PatternId::new(1)));
        assert!(t.has_local(PatternId::new(2)));
    }

    #[test]
    fn pattern_views_are_ordered() {
        let mut t = SubscriptionTable::new();
        t.insert(PatternId::new(5), Interface::Local);
        t.insert(PatternId::new(1), Interface::Neighbor(NodeId::new(2)));
        t.insert(PatternId::new(3), Interface::Local);
        let local: Vec<_> = t.local_patterns().collect();
        assert_eq!(local, vec![PatternId::new(3), PatternId::new(5)]);
        let all: Vec<_> = t.all_patterns().collect();
        assert_eq!(
            all,
            vec![PatternId::new(1), PatternId::new(3), PatternId::new(5)]
        );
    }

    #[test]
    fn neighbor_enumeration_is_id_ordered_regardless_of_insertion_order() {
        // Out-of-order registrations renumber slots; the enumeration
        // order must stay ascending by node id.
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(0);
        for raw in [9u32, 2, 7, 0, 5] {
            t.insert(p, Interface::Neighbor(NodeId::new(raw)));
        }
        let ids: Vec<u32> = t
            .neighbors_for_iter(p, None)
            .map(|n| n.index() as u32)
            .collect();
        assert_eq!(ids, vec![0, 2, 5, 7, 9]);
    }

    #[test]
    fn degree_above_64_spills_into_extra_words() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        let q = PatternId::new(2);
        for raw in 0..130u32 {
            let target = if raw % 2 == 0 { p } else { q };
            t.insert(target, Interface::Neighbor(NodeId::new(raw)));
        }
        assert_eq!(t.neighbors_for(p, None).len(), 65);
        assert_eq!(t.neighbors_for(q, None).len(), 65);
        let union = t.matching_neighbors(&ev(&[1, 2]), None);
        assert_eq!(union.len(), 130);
        assert!(union.windows(2).all(|w| w[0] < w[1]), "ascending id order");
        // Exclusion works past the inline word too.
        let minus = t.matching_neighbors(&ev(&[1, 2]), Some(NodeId::new(100)));
        assert_eq!(minus.len(), 129);
        assert!(!minus.contains(&NodeId::new(100)));
        // Removing a low slot renumbers the spilled bits correctly.
        let affected = t.remove_neighbor(NodeId::new(0));
        assert_eq!(affected, vec![p]);
        assert_eq!(t.matching_neighbors(&ev(&[1, 2]), None).len(), 129);
    }

    #[test]
    fn with_dims_preallocates_without_changing_behavior() {
        let mut a = SubscriptionTable::with_dims(70, 10);
        let mut b = SubscriptionTable::new();
        for (p, n) in [(3u16, 5u32), (69, 1), (3, 9)] {
            assert_eq!(
                a.insert(PatternId::new(p), Interface::Neighbor(NodeId::new(n))),
                b.insert(PatternId::new(p), Interface::Neighbor(NodeId::new(n)))
            );
        }
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn equality_is_semantic_not_structural() {
        // Same content via different insertion orders (and therefore
        // different registry histories) compares equal.
        let mut a = SubscriptionTable::new();
        let mut b = SubscriptionTable::with_dims(16, 4);
        for n in [3u32, 1, 2] {
            a.insert(PatternId::new(7), Interface::Neighbor(NodeId::new(n)));
        }
        for n in [1u32, 2, 3] {
            b.insert(PatternId::new(7), Interface::Neighbor(NodeId::new(n)));
        }
        assert_eq!(a, b);
        b.insert(PatternId::new(7), Interface::Local);
        assert_ne!(a, b);
    }
}
