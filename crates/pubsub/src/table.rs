//! The subscription table kept by every dispatcher.
//!
//! In a subscription-forwarding scheme the table maps each pattern to
//! the set of *interfaces* from which that subscription was received:
//! either the local clients (collapsed to [`Interface::Local`], since
//! the paper ignores individual clients) or a neighboring dispatcher.
//! Events are forwarded along every interface whose pattern matches,
//! except the one they arrived from — laying event routes on the
//! reverse paths of subscription propagation.

use std::collections::{BTreeMap, BTreeSet};

use eps_overlay::NodeId;

use crate::event::Event;
use crate::pattern::PatternId;

/// Where a subscription came from, as seen by one dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Interface {
    /// Some local client is subscribed (the dispatcher itself is a
    /// subscriber, in the paper's stretched terminology).
    Local,
    /// The subscription was propagated by this neighboring dispatcher.
    Neighbor(NodeId),
}

/// A dispatcher's subscription table.
///
/// # Examples
///
/// ```
/// use eps_pubsub::{Interface, PatternId, SubscriptionTable};
/// use eps_overlay::NodeId;
///
/// let mut table = SubscriptionTable::new();
/// let p = PatternId::new(3);
/// table.insert(p, Interface::Local);
/// table.insert(p, Interface::Neighbor(NodeId::new(7)));
/// assert!(table.has_local(p));
/// assert_eq!(table.neighbors_for(p, None), vec![NodeId::new(7)]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubscriptionTable {
    entries: BTreeMap<PatternId, BTreeSet<Interface>>,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `pattern` is subscribed via `iface`. Returns `true`
    /// if this is new information (used to decide whether to propagate
    /// further).
    pub fn insert(&mut self, pattern: PatternId, iface: Interface) -> bool {
        self.entries.entry(pattern).or_default().insert(iface)
    }

    /// Removes a subscription entry. Returns `true` if it was present.
    pub fn remove(&mut self, pattern: PatternId, iface: Interface) -> bool {
        if let Some(set) = self.entries.get_mut(&pattern) {
            let removed = set.remove(&iface);
            if set.is_empty() {
                self.entries.remove(&pattern);
            }
            removed
        } else {
            false
        }
    }

    /// Drops every entry learned from `neighbor` (when the link to it
    /// breaks). Returns the affected patterns.
    pub fn remove_neighbor(&mut self, neighbor: NodeId) -> Vec<PatternId> {
        let iface = Interface::Neighbor(neighbor);
        let mut affected = Vec::new();
        self.entries.retain(|&p, set| {
            if set.remove(&iface) {
                affected.push(p);
            }
            !set.is_empty()
        });
        affected
    }

    /// `true` if a local client subscribes to `pattern`.
    pub fn has_local(&self, pattern: PatternId) -> bool {
        self.entries
            .get(&pattern)
            .is_some_and(|s| s.contains(&Interface::Local))
    }

    /// `true` if the table has any entry (local or remote) for
    /// `pattern`.
    pub fn knows(&self, pattern: PatternId) -> bool {
        self.entries.contains_key(&pattern)
    }

    /// The neighbor interfaces subscribed to `pattern`, excluding
    /// `exclude` (typically the message's arrival interface), in id
    /// order.
    pub fn neighbors_for(&self, pattern: PatternId, exclude: Option<NodeId>) -> Vec<NodeId> {
        self.neighbors_for_iter(pattern, exclude).collect()
    }

    /// Allocation-free variant of [`SubscriptionTable::neighbors_for`]:
    /// iterates the subscribed neighbor interfaces in id order without
    /// materializing a `Vec`.
    pub fn neighbors_for_iter(
        &self,
        pattern: PatternId,
        exclude: Option<NodeId>,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.entries
            .get(&pattern)
            .into_iter()
            .flatten()
            .filter_map(move |iface| match *iface {
                Interface::Neighbor(n) if Some(n) != exclude => Some(n),
                _ => None,
            })
    }

    /// The distinct neighbors an event must be forwarded to: the union
    /// of [`SubscriptionTable::neighbors_for`] over the event's
    /// patterns, minus the arrival interface.
    pub fn matching_neighbors(&self, event: &Event, from: Option<NodeId>) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.matching_neighbors_into(event, from, &mut out);
        out
    }

    /// Like [`SubscriptionTable::matching_neighbors`], but reuses the
    /// caller's buffer: `out` is cleared and refilled, so a dispatcher
    /// forwarding many events allocates nothing in steady state.
    pub fn matching_neighbors_into(
        &self,
        event: &Event,
        from: Option<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        for p in event.patterns() {
            out.extend(self.neighbors_for_iter(p, from));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// `true` if the event matches a local subscription.
    pub fn matches_locally(&self, event: &Event) -> bool {
        event.patterns().any(|p| self.has_local(p))
    }

    /// Patterns with a local subscription, in order.
    pub fn local_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        self.entries
            .iter()
            .filter(|(_, set)| set.contains(&Interface::Local))
            .map(|(&p, _)| p)
    }

    /// Every pattern known to the table — locally subscribed or
    /// learned through forwarding. The push algorithm draws its gossip
    /// pattern from this set ("p is selected by considering the whole
    /// subscription table").
    pub fn all_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        self.entries.keys().copied()
    }

    /// Number of patterns known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn ev(patterns: &[u16]) -> Event {
        Event::new(
            EventId::new(NodeId::new(0), 1),
            patterns.iter().map(|&p| (PatternId::new(p), 0)).collect(),
        )
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        assert!(t.insert(p, Interface::Local));
        assert!(!t.insert(p, Interface::Local));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_cleans_up_empty_patterns() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(1);
        t.insert(p, Interface::Local);
        assert!(t.remove(p, Interface::Local));
        assert!(!t.remove(p, Interface::Local));
        assert!(t.is_empty());
        assert!(!t.knows(p));
    }

    #[test]
    fn neighbors_for_excludes_arrival_interface() {
        let mut t = SubscriptionTable::new();
        let p = PatternId::new(2);
        t.insert(p, Interface::Neighbor(NodeId::new(1)));
        t.insert(p, Interface::Neighbor(NodeId::new(2)));
        t.insert(p, Interface::Local);
        assert_eq!(
            t.neighbors_for(p, Some(NodeId::new(1))),
            vec![NodeId::new(2)]
        );
        assert_eq!(t.neighbors_for(p, None).len(), 2);
    }

    #[test]
    fn matching_neighbors_dedups_across_patterns() {
        let mut t = SubscriptionTable::new();
        let n = NodeId::new(9);
        t.insert(PatternId::new(1), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Neighbor(n));
        let e = ev(&[1, 2]);
        assert_eq!(t.matching_neighbors(&e, None), vec![n]);
        assert_eq!(t.matching_neighbors(&e, Some(n)), Vec::<NodeId>::new());
    }

    #[test]
    fn matches_locally_uses_local_interface_only() {
        let mut t = SubscriptionTable::new();
        t.insert(PatternId::new(1), Interface::Neighbor(NodeId::new(3)));
        assert!(!t.matches_locally(&ev(&[1])));
        t.insert(PatternId::new(1), Interface::Local);
        assert!(t.matches_locally(&ev(&[1])));
        assert!(!t.matches_locally(&ev(&[2])));
    }

    #[test]
    fn remove_neighbor_drops_all_its_entries() {
        let mut t = SubscriptionTable::new();
        let n = NodeId::new(4);
        t.insert(PatternId::new(1), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Neighbor(n));
        t.insert(PatternId::new(2), Interface::Local);
        let affected = t.remove_neighbor(n);
        assert_eq!(affected, vec![PatternId::new(1), PatternId::new(2)]);
        assert!(!t.knows(PatternId::new(1)));
        assert!(t.has_local(PatternId::new(2)));
    }

    #[test]
    fn pattern_views_are_ordered() {
        let mut t = SubscriptionTable::new();
        t.insert(PatternId::new(5), Interface::Local);
        t.insert(PatternId::new(1), Interface::Neighbor(NodeId::new(2)));
        t.insert(PatternId::new(3), Interface::Local);
        let local: Vec<_> = t.local_patterns().collect();
        assert_eq!(local, vec![PatternId::new(3), PatternId::new(5)]);
        let all: Vec<_> = t.all_patterns().collect();
        assert_eq!(
            all,
            vec![PatternId::new(1), PatternId::new(3), PatternId::new(5)]
        );
    }
}
