//! The dispatcher: a node of the content-based publish-subscribe
//! network, implementing subscription forwarding and best-effort event
//! routing on the tree overlay (paper, Section II).
//!
//! The dispatcher is *pure* protocol logic: methods take incoming
//! messages and return the messages to send next. The simulation
//! harness maps those onto links; the epidemic recovery algorithms
//! (crate `eps-gossip`) plug in on top via the state accessors.

use std::collections::{HashMap, HashSet};

use eps_overlay::NodeId;

use crate::cache::{EventCache, EvictionPolicy};
use crate::clients::{ClientId, ClientRegistry};
use crate::detector::{LossDetector, LossRecord};
use crate::event::{Event, EventId};
use crate::pattern::{PatternId, DENSE_UNIVERSE_MAX};
use crate::table::{Interface, SubscriptionTable};

/// Per-pattern publication sequence counters.
///
/// Small universes (the paper's Π = 70) use a dense array indexed by
/// [`PatternId::index`]; past [`DENSE_UNIVERSE_MAX`] the per-node cost
/// of `Π × 8` bytes starts to matter at 10⁵–10⁶-node populations, so a
/// map holding only the patterns this node has actually published is
/// used instead. Keyed lookups only — never iterated, so the switch
/// cannot change any observable output.
#[derive(Clone, Debug)]
enum SeqCounters {
    Dense(Vec<u64>),
    Sparse(HashMap<u16, u64>),
}

impl SeqCounters {
    fn new(universe: usize) -> Self {
        if universe > DENSE_UNIVERSE_MAX {
            SeqCounters::Sparse(HashMap::new())
        } else {
            SeqCounters::Dense(vec![0; universe])
        }
    }

    /// Returns the next sequence number for `pattern` and advances it.
    fn next(&mut self, pattern: PatternId) -> u64 {
        match self {
            SeqCounters::Dense(counters) => {
                let idx = pattern.index();
                if idx >= counters.len() {
                    counters.resize(idx + 1, 0);
                }
                let seq = counters[idx];
                counters[idx] += 1;
                seq
            }
            SeqCounters::Sparse(counters) => {
                let slot = counters.entry(pattern.value()).or_insert(0);
                let seq = *slot;
                *slot += 1;
                seq
            }
        }
    }
}

/// The subscription-forwarding memory: which (pattern, neighbor) pairs
/// a `Subscribe` has been sent for and not retracted.
///
/// Subscription flooding makes this set dense — on a quiescent tree a
/// dispatcher has sent almost every subscribed pattern to almost every
/// neighbor — so it is stored as one pattern bitset per neighbor
/// (Π/8 bytes each) instead of a hash set of pairs (~50 bytes per
/// pair), a ~100× saving that the 10⁵–10⁶-node populations need.
/// Membership operations only — never iterated, so the layout cannot
/// change any observable output.
#[derive(Clone, Debug, Default)]
struct SentSet {
    /// Neighbors with at least one mark, sorted by id.
    slots: Vec<NodeId>,
    /// Per-neighbor pattern bitsets, parallel to `slots`, grown on
    /// demand.
    bits: Vec<Vec<u64>>,
}

impl SentSet {
    /// Marks (pattern, neighbor); returns `true` if newly marked.
    fn insert(&mut self, pattern: PatternId, neighbor: NodeId) -> bool {
        let slot = match self.slots.binary_search(&neighbor) {
            Ok(slot) => slot,
            Err(slot) => {
                self.slots.insert(slot, neighbor);
                self.bits.insert(slot, Vec::new());
                slot
            }
        };
        let idx = pattern.index();
        let words = &mut self.bits[slot];
        if words.len() <= idx / 64 {
            words.resize(idx / 64 + 1, 0);
        }
        let bit = 1u64 << (idx % 64);
        let new = words[idx / 64] & bit == 0;
        words[idx / 64] |= bit;
        new
    }

    fn contains(&self, pattern: PatternId, neighbor: NodeId) -> bool {
        let Ok(slot) = self.slots.binary_search(&neighbor) else {
            return false;
        };
        let idx = pattern.index();
        self.bits[slot]
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    fn remove(&mut self, pattern: PatternId, neighbor: NodeId) {
        if let Ok(slot) = self.slots.binary_search(&neighbor) {
            let idx = pattern.index();
            if let Some(w) = self.bits[slot].get_mut(idx / 64) {
                *w &= !(1u64 << (idx % 64));
            }
        }
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.bits.clear();
    }

    /// All marked pairs, sorted. Test-only introspection.
    #[cfg(test)]
    fn pairs(&self) -> Vec<(PatternId, NodeId)> {
        let mut out = Vec::new();
        for (slot, words) in self.bits.iter().enumerate() {
            for (wi, &w) in words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    out.push((PatternId::new((wi * 64 + b) as u16), self.slots[slot]));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Static per-dispatcher configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatcherConfig {
    /// Event cache capacity β.
    pub cache_capacity: usize,
    /// Whether publishers cache their own events even when not
    /// subscribed (required by publisher-based pull).
    pub cache_own_published: bool,
    /// Whether event messages record the dispatchers they traverse
    /// (required by publisher-based pull; costs 32 bits per hop).
    pub record_routes: bool,
    /// Which cached event to sacrifice when the buffer is full
    /// (the paper uses FIFO; alternatives support its buffer-policy
    /// investigation).
    pub eviction: EvictionPolicy,
    /// Pattern-universe size (Π, from
    /// [`crate::PatternSpace::universe`]): pre-sizes the dense
    /// per-pattern tables. `0` means "unknown, grow on demand" —
    /// behavior is identical either way.
    pub pattern_universe: usize,
    /// Expected overlay degree: pre-sizes the neighbor-slot registry.
    /// `0` means "unknown, grow on demand".
    pub degree_hint: usize,
    /// Whether the event cache maintains the incremental hash-range
    /// summary index (required by the summary-reconciliation digests;
    /// costs O(log C) per insert/evict and per-event tree memory, so
    /// off unless the algorithm declares it).
    pub summary_index: bool,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            cache_capacity: 1500,
            cache_own_published: false,
            record_routes: false,
            eviction: EvictionPolicy::Fifo,
            pattern_universe: 0,
            degree_hint: 0,
            summary_index: false,
        }
    }
}

/// A protocol message of the best-effort publish-subscribe layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PubSubMessage {
    /// Propagated subscription for a pattern.
    Subscribe(PatternId),
    /// Propagated unsubscription for a pattern.
    Unsubscribe(PatternId),
    /// A published event travelling the dispatching tree.
    Event(Event),
}

/// A message to hand to a neighbor on the overlay.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Forward {
    /// The neighbor to send to.
    pub to: NodeId,
    /// What to send.
    pub msg: PubSubMessage,
}

/// What happened when a dispatcher processed an incoming event.
#[derive(Clone, Debug, Default)]
pub struct EventReceipt {
    /// The event matched a local subscription and had not been seen
    /// before: it was delivered to local clients.
    pub delivered: bool,
    /// The event had already been received (through another path or a
    /// recovery); it was neither delivered nor forwarded again.
    pub duplicate: bool,
    /// Losses newly detected from this event's sequence numbers.
    pub losses: Vec<LossRecord>,
    /// Copies to forward on the dispatching tree.
    pub forwards: Vec<Forward>,
}

/// Per-source reverse-route knowledge harvested from route-recording
/// events (the `Routes` buffer of publisher-based pull).
#[derive(Clone, Debug, Default)]
pub struct RouteBook {
    /// Keyed lookups only — this map is never iterated, so the
    /// HashMap's arbitrary ordering can't leak into any output.
    routes: HashMap<NodeId, Vec<NodeId>>,
}

impl RouteBook {
    /// Stores the route of the most recently received event from
    /// `source` (path from the source to this dispatcher, inclusive).
    pub fn record(&mut self, source: NodeId, route: Vec<NodeId>) {
        self.routes.insert(source, route);
    }

    /// The last known route *from* `source` to this dispatcher.
    pub fn route_from(&self, source: NodeId) -> Option<&[NodeId]> {
        self.routes.get(&source).map(Vec::as_slice)
    }

    /// The reverse route: from this dispatcher back *towards*
    /// `source`, excluding this dispatcher itself — the hop list a
    /// publisher-bound gossip message must follow.
    pub fn route_to(&self, source: NodeId) -> Option<Vec<NodeId>> {
        self.routes.get(&source).map(|r| {
            let mut rev: Vec<NodeId> = r.iter().rev().skip(1).copied().collect();
            if rev.is_empty() {
                // The source is a direct neighbor (route was [source]).
                rev.push(source);
            }
            rev
        })
    }

    /// Number of sources with known routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if no routes are known.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// A content-based publish-subscribe dispatcher.
///
/// # Examples
///
/// Two dispatchers, a subscription, and a published event:
///
/// ```
/// use eps_pubsub::{Dispatcher, DispatcherConfig, PatternId, PubSubMessage};
/// use eps_overlay::NodeId;
///
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// let mut d0 = Dispatcher::new(a, DispatcherConfig::default());
/// let mut d1 = Dispatcher::new(b, DispatcherConfig::default());
///
/// // d1 subscribes to pattern 5 and propagates towards d0.
/// let p = PatternId::new(5);
/// let out = d1.subscribe_local(p, &[a]);
/// assert_eq!(out.len(), 1);
/// d0.on_subscribe(p, b, &[b]);
///
/// // d0 publishes an event matching pattern 5: it is routed to d1.
/// let (event, _) = d0.publish(&[p]);
/// let receipt = d1.on_event(event, Some(a));
/// assert!(receipt.delivered);
/// ```
#[derive(Clone, Debug)]
pub struct Dispatcher {
    id: NodeId,
    config: DispatcherConfig,
    table: SubscriptionTable,
    /// End-user client subscriptions behind this dispatcher. The
    /// routing `table`'s `Local` bits hold exactly this registry's
    /// aggregate filter; the per-pattern transitions reported by the
    /// registry drive (un)propagation on the tree.
    clients: ClientRegistry,
    cache: EventCache,
    detector: LossDetector,
    routes: RouteBook,
    /// Membership checks only — never iterated, so the HashSet's
    /// arbitrary ordering can't leak into any output.
    seen: HashSet<EventId>,
    next_event_seq: u64,
    /// Per-pattern publication sequence counters.
    pattern_counters: SeqCounters,
    /// Membership checks only — never iterated.
    subs_sent: SentSet,
    /// Membership checks only — never iterated (see `seen`).
    late_patterns: HashSet<PatternId>,
    delivered_total: u64,
    published_total: u64,
    /// Reusable buffer for match results, so the per-event forwarding
    /// path does not allocate in steady state.
    match_scratch: Vec<NodeId>,
}

impl Dispatcher {
    /// Creates a dispatcher with empty state.
    pub fn new(id: NodeId, config: DispatcherConfig) -> Self {
        let mut cache = EventCache::with_policy_sized(
            config.cache_capacity,
            config.eviction,
            Some(id),
            config.pattern_universe,
        );
        if config.summary_index {
            cache.enable_summary_index();
        }
        Dispatcher {
            id,
            config,
            table: SubscriptionTable::with_dims(config.pattern_universe, config.degree_hint),
            clients: ClientRegistry::new(),
            cache,
            detector: LossDetector::with_universe(config.pattern_universe),
            routes: RouteBook::default(),
            seen: HashSet::new(),
            next_event_seq: 0,
            pattern_counters: SeqCounters::new(config.pattern_universe),
            subs_sent: SentSet::default(),
            late_patterns: HashSet::new(),
            delivered_total: 0,
            published_total: 0,
            match_scratch: Vec::new(),
        }
    }

    /// This dispatcher's overlay node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The dispatcher's configuration.
    pub fn config(&self) -> &DispatcherConfig {
        &self.config
    }

    /// The subscription table.
    pub fn table(&self) -> &SubscriptionTable {
        &self.table
    }

    /// The event cache.
    pub fn cache(&self) -> &EventCache {
        &self.cache
    }

    /// Mutable access to the event cache (recovery inserts events).
    pub fn cache_mut(&mut self) -> &mut EventCache {
        &mut self.cache
    }

    /// The loss detector.
    pub fn detector(&self) -> &LossDetector {
        &self.detector
    }

    /// Routes harvested from received events (publisher-based pull).
    pub fn routes(&self) -> &RouteBook {
        &self.routes
    }

    /// `true` if the event id has been received or published here.
    pub fn has_seen(&self, id: EventId) -> bool {
        self.seen.contains(&id)
    }

    /// Total events delivered to local clients.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Total events published by this dispatcher.
    pub fn published_total(&self) -> u64 {
        self.published_total
    }

    // ------------------------------------------------------------------
    // Subscription forwarding (Section II).
    // ------------------------------------------------------------------

    /// A local client subscribes to `pattern`; returns the subscription
    /// messages to propagate to `neighbors`.
    pub fn subscribe_local(&mut self, pattern: PatternId, neighbors: &[NodeId]) -> Vec<Forward> {
        self.table.insert(pattern, Interface::Local);
        self.propagate_subscription(pattern, None, neighbors)
    }

    /// An identified local client subscribes to `pattern`. Covering:
    /// if another local client already holds the pattern, the aggregate
    /// filter is unchanged and *nothing* is propagated — only a 0→1
    /// refcount transition installs routing state via
    /// [`Dispatcher::subscribe_local`].
    pub fn client_subscribe(
        &mut self,
        client: ClientId,
        pattern: PatternId,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        if self.clients.subscribe(client, pattern) {
            self.subscribe_local(pattern, neighbors)
        } else {
            Vec::new()
        }
    }

    /// [`Dispatcher::client_subscribe`] for a *mid-run* subscription
    /// (client churn): a 0→1 transition goes through
    /// [`Dispatcher::subscribe_local_late`] so loss detection starts
    /// from the first event actually received.
    pub fn client_subscribe_late(
        &mut self,
        client: ClientId,
        pattern: PatternId,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        if self.clients.subscribe(client, pattern) {
            self.subscribe_local_late(pattern, neighbors)
        } else {
            Vec::new()
        }
    }

    /// An identified local client unsubscribes from `pattern`.
    /// Refcounted retraction: routing state is removed (and
    /// unsubscriptions propagated) only when the last local client
    /// drops the pattern.
    pub fn client_unsubscribe(
        &mut self,
        client: ClientId,
        pattern: PatternId,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        if self.clients.unsubscribe(client, pattern) {
            self.unsubscribe_local(pattern, neighbors)
        } else {
            Vec::new()
        }
    }

    /// The client-subscription registry backing the aggregate filter.
    pub fn clients(&self) -> &ClientRegistry {
        &self.clients
    }

    /// Appends to `out` every local client matching `event`, each
    /// exactly once, ascending (local fan-out). Clears `out` first.
    pub fn matching_clients_into(&self, event: &Event, out: &mut Vec<ClientId>) {
        self.clients.matching_clients_into(event, out);
    }

    /// A local client subscribes to `pattern` *mid-run* (subscription
    /// churn). Unlike [`Dispatcher::subscribe_local`], loss detection
    /// for this pattern's streams starts from the first event actually
    /// received: the subscriber is not owed the streams' history, and
    /// any stale expectations from an earlier subscription are
    /// dropped.
    pub fn subscribe_local_late(
        &mut self,
        pattern: PatternId,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        self.detector.forget_pattern(pattern);
        self.late_patterns.insert(pattern);
        self.subscribe_local(pattern, neighbors)
    }

    /// Handles a subscription propagated by neighbor `from`.
    pub fn on_subscribe(
        &mut self,
        pattern: PatternId,
        from: NodeId,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        self.table.insert(pattern, Interface::Neighbor(from));
        self.propagate_subscription(pattern, Some(from), neighbors)
    }

    /// Forwards a subscription to every neighbor that has not yet been
    /// told about this pattern (the paper's "avoid subscription
    /// forwarding of the same event pattern in the same direction").
    fn propagate_subscription(
        &mut self,
        pattern: PatternId,
        from: Option<NodeId>,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        neighbors
            .iter()
            .filter(|&&n| Some(n) != from)
            .filter(|&&n| self.subs_sent.insert(pattern, n))
            .map(|&n| Forward {
                to: n,
                msg: PubSubMessage::Subscribe(pattern),
            })
            .collect()
    }

    /// Installs a routing-table entry as if a `Subscribe(pattern)` had
    /// arrived from `from`, without propagating anything. Used by the
    /// direct subscription fill ([`crate::flood_subscriptions`]'s
    /// closed-form equivalent for trees) to reach the flooded fixpoint
    /// without exchanging messages.
    pub(crate) fn install_route(&mut self, pattern: PatternId, from: NodeId) {
        self.table.insert(pattern, Interface::Neighbor(from));
    }

    /// Records that a `Subscribe(pattern)` is considered sent to `to`,
    /// without producing the message. Counterpart of
    /// [`Dispatcher::install_route`] for the sender-side forwarding
    /// memory that gates unsubscription propagation.
    pub(crate) fn mark_subscription_sent(&mut self, pattern: PatternId, to: NodeId) {
        self.subs_sent.insert(pattern, to);
    }

    /// All (pattern, neighbor) pairs currently marked as sent, sorted.
    /// Test-only introspection for the direct-fill equivalence proof.
    #[cfg(test)]
    pub(crate) fn sent_pairs(&self) -> Vec<(PatternId, NodeId)> {
        self.subs_sent.pairs()
    }

    /// A local client unsubscribes from `pattern`.
    pub fn unsubscribe_local(&mut self, pattern: PatternId, neighbors: &[NodeId]) -> Vec<Forward> {
        self.table.remove(pattern, Interface::Local);
        self.propagate_unsubscription(pattern, None, neighbors)
    }

    /// Handles an unsubscription propagated by neighbor `from`.
    pub fn on_unsubscribe(
        &mut self,
        pattern: PatternId,
        from: NodeId,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        self.table.remove(pattern, Interface::Neighbor(from));
        self.propagate_unsubscription(pattern, Some(from), neighbors)
    }

    /// After removing an entry, tells each neighbor that no longer has
    /// any reason to route `pattern` events this way.
    fn propagate_unsubscription(
        &mut self,
        pattern: PatternId,
        from: Option<NodeId>,
        neighbors: &[NodeId],
    ) -> Vec<Forward> {
        let mut out = Vec::new();
        for &n in neighbors.iter().filter(|&&n| Some(n) != from) {
            if !self.subs_sent.contains(pattern, n) {
                continue;
            }
            // Still needed if any interface other than `n` subscribes.
            let still_needed = self.table.has_local(pattern)
                || !self.table.neighbors_for(pattern, Some(n)).is_empty();
            if !still_needed {
                self.subs_sent.remove(pattern, n);
                out.push(Forward {
                    to: n,
                    msg: PubSubMessage::Unsubscribe(pattern),
                });
            }
        }
        out
    }

    /// Clears all routing state learned from neighbors (subscription
    /// entries and forwarding memory), keeping local subscriptions,
    /// caches, and loss-detection state. Used when the overlay is
    /// reconfigured and subscription routes must be rebuilt.
    pub fn reset_routing_state(&mut self) {
        let locals: Vec<PatternId> = self.table.local_patterns().collect();
        self.table =
            SubscriptionTable::with_dims(self.config.pattern_universe, self.config.degree_hint);
        for p in locals {
            self.table.insert(p, Interface::Local);
        }
        self.subs_sent.clear();
    }

    // ------------------------------------------------------------------
    // Event publication and routing.
    // ------------------------------------------------------------------

    /// Publishes a new event with the given content. Returns the event
    /// (for metrics bookkeeping) and the copies to forward.
    ///
    /// # Panics
    ///
    /// Panics if `content` is empty, unsorted, or has duplicates
    /// (produce it with [`crate::PatternSpace::random_content`] or the
    /// allocation-free [`crate::PatternSpace::random_content_into`]).
    pub fn publish(&mut self, content: &[PatternId]) -> (Event, EventReceipt) {
        let pattern_seqs: Vec<(PatternId, u64)> = content
            .iter()
            .map(|&p| (p, self.pattern_counters.next(p)))
            .collect();
        let id = EventId::new(self.id, self.next_event_seq);
        self.next_event_seq += 1;
        self.published_total += 1;
        let event = Event::new(id, pattern_seqs);
        self.seen.insert(id);
        // The source sees its own event: advance loss detection for
        // locally subscribed patterns so the source never "detects"
        // its own publications as lost.
        let table = &self.table;
        let late = &self.late_patterns;
        self.detector
            .observe_with(&event, |p| table.has_local(p), |p| late.contains(&p));
        let delivered = self.table.matches_locally(&event);
        if delivered {
            self.delivered_total += 1;
        }
        if delivered || self.config.cache_own_published {
            self.cache.insert(event.clone());
        }
        let forwards = self.forwards_for(&event, None);
        let receipt = EventReceipt {
            delivered,
            duplicate: false,
            losses: Vec::new(),
            forwards,
        };
        (event, receipt)
    }

    /// Handles an event arriving from neighbor `from` on the
    /// dispatching tree.
    pub fn on_event(&mut self, mut event: Event, from: Option<NodeId>) -> EventReceipt {
        if self.config.record_routes {
            event.record_hop(self.id);
            self.routes.record(event.source(), event.route().to_vec());
        }
        if !self.seen.insert(event.id()) {
            return EventReceipt {
                duplicate: true,
                ..EventReceipt::default()
            };
        }
        let table = &self.table;
        let late = &self.late_patterns;
        let losses =
            self.detector
                .observe_with(&event, |p| table.has_local(p), |p| late.contains(&p));
        let delivered = self.table.matches_locally(&event);
        if delivered {
            self.delivered_total += 1;
            self.cache.insert(event.clone());
        }
        let forwards = self.forwards_for(&event, from);
        EventReceipt {
            delivered,
            duplicate: false,
            losses,
            forwards,
        }
    }

    /// Handles an event recovered through the out-of-band channel (a
    /// gossip reply). Recovered events are delivered and cached but not
    /// re-forwarded on the tree — downstream dispatchers run their own
    /// recovery.
    pub fn on_recovered_event(&mut self, event: Event) -> EventReceipt {
        if !self.seen.insert(event.id()) {
            return EventReceipt {
                duplicate: true,
                ..EventReceipt::default()
            };
        }
        let table = &self.table;
        let late = &self.late_patterns;
        let losses =
            self.detector
                .observe_with(&event, |p| table.has_local(p), |p| late.contains(&p));
        let delivered = self.table.matches_locally(&event);
        if delivered {
            self.delivered_total += 1;
            self.cache.insert(event.clone());
        }
        EventReceipt {
            delivered,
            duplicate: false,
            losses,
            forwards: Vec::new(),
        }
    }

    fn forwards_for(&mut self, event: &Event, from: Option<NodeId>) -> Vec<Forward> {
        let mut scratch = std::mem::take(&mut self.match_scratch);
        self.table
            .matching_neighbors_into(event, from, &mut scratch);
        let out = scratch
            .iter()
            .map(|&n| Forward {
                to: n,
                // An Arc refcount bump, not a deep copy of the event.
                msg: PubSubMessage::Event(event.clone()),
            })
            .collect();
        self.match_scratch = scratch;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DispatcherConfig {
        DispatcherConfig::default()
    }

    #[test]
    fn subscribe_propagates_once_per_neighbor() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        let nbrs = [NodeId::new(1), NodeId::new(2)];
        let out = d.subscribe_local(p, &nbrs);
        assert_eq!(out.len(), 2);
        // A second subscription for the same pattern is suppressed.
        let out = d.on_subscribe(p, NodeId::new(1), &nbrs);
        assert!(out.is_empty(), "already forwarded everywhere: {out:?}");
    }

    #[test]
    fn on_subscribe_excludes_sender() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        let nbrs = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let out = d.on_subscribe(p, NodeId::new(2), &nbrs);
        let targets: Vec<NodeId> = out.iter().map(|f| f.to).collect();
        assert_eq!(targets, vec![NodeId::new(1), NodeId::new(3)]);
        assert!(!d.table().has_local(p));
        assert!(d.table().knows(p));
    }

    #[test]
    fn publish_assigns_per_pattern_sequences() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let (p, q) = (PatternId::new(1), PatternId::new(2));
        let (e1, _) = d.publish(&[p]);
        let (e2, _) = d.publish(&[p, q]);
        assert_eq!(e1.seq_for(p), Some(0));
        assert_eq!(e2.seq_for(p), Some(1));
        assert_eq!(e2.seq_for(q), Some(0));
        assert_ne!(e1.id(), e2.id());
        assert_eq!(d.published_total(), 2);
    }

    #[test]
    fn publish_delivers_and_caches_when_locally_subscribed() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        d.subscribe_local(p, &[]);
        let (e, receipt) = d.publish(&[p]);
        assert!(receipt.delivered);
        assert!(d.cache().contains(e.id()));
        assert_eq!(d.delivered_total(), 1);
    }

    #[test]
    fn publisher_caching_is_config_gated() {
        let p = PatternId::new(1);
        let mut plain = Dispatcher::new(NodeId::new(0), cfg());
        let (e, _) = plain.publish(&[p]);
        assert!(!plain.cache().contains(e.id()));

        let mut caching = Dispatcher::new(
            NodeId::new(0),
            DispatcherConfig {
                cache_own_published: true,
                ..cfg()
            },
        );
        let (e, _) = caching.publish(&[p]);
        assert!(caching.cache().contains(e.id()));
    }

    #[test]
    fn events_route_along_subscription_reverse_path() {
        // d1 learns that d2 (via neighbor 2) wants pattern 1.
        let mut d1 = Dispatcher::new(NodeId::new(1), cfg());
        let p = PatternId::new(1);
        d1.on_subscribe(p, NodeId::new(2), &[NodeId::new(0), NodeId::new(2)]);
        // An event from neighbor 0 matching p must be forwarded to 2 only.
        let e = Event::new(EventId::new(NodeId::new(0), 0), vec![(p, 0)]);
        let receipt = d1.on_event(e, Some(NodeId::new(0)));
        assert!(!receipt.delivered);
        assert_eq!(receipt.forwards.len(), 1);
        assert_eq!(receipt.forwards[0].to, NodeId::new(2));
    }

    #[test]
    fn duplicate_events_are_suppressed() {
        let mut d = Dispatcher::new(NodeId::new(1), cfg());
        let p = PatternId::new(1);
        d.subscribe_local(p, &[]);
        let e = Event::new(EventId::new(NodeId::new(0), 0), vec![(p, 0)]);
        let first = d.on_event(e.clone(), Some(NodeId::new(0)));
        let second = d.on_event(e, Some(NodeId::new(0)));
        assert!(first.delivered && !first.duplicate);
        assert!(second.duplicate && !second.delivered);
        assert_eq!(d.delivered_total(), 1);
    }

    #[test]
    fn gaps_are_detected_for_local_patterns_only() {
        let mut d = Dispatcher::new(NodeId::new(1), cfg());
        let p = PatternId::new(1);
        let q = PatternId::new(2);
        d.subscribe_local(p, &[]);
        let e = Event::new(EventId::new(NodeId::new(0), 7), vec![(p, 2), (q, 5)]);
        let receipt = d.on_event(e, Some(NodeId::new(0)));
        assert_eq!(receipt.losses.len(), 2); // p seqs 0, 1
        assert!(receipt.losses.iter().all(|l| l.pattern == p));
    }

    #[test]
    fn route_recording_updates_route_book() {
        let mut d = Dispatcher::new(
            NodeId::new(5),
            DispatcherConfig {
                record_routes: true,
                ..cfg()
            },
        );
        let p = PatternId::new(1);
        let mut e = Event::new(EventId::new(NodeId::new(0), 0), vec![(p, 0)]);
        e.record_hop(NodeId::new(3));
        d.on_event(e, Some(NodeId::new(3)));
        assert_eq!(
            d.routes().route_from(NodeId::new(0)),
            Some(&[NodeId::new(0), NodeId::new(3), NodeId::new(5)][..])
        );
        assert_eq!(
            d.routes().route_to(NodeId::new(0)),
            Some(vec![NodeId::new(3), NodeId::new(0)])
        );
    }

    #[test]
    fn recovered_events_deliver_but_do_not_forward() {
        let mut d = Dispatcher::new(NodeId::new(1), cfg());
        let p = PatternId::new(1);
        d.subscribe_local(p, &[]);
        // Another neighbor is also subscribed: a tree event would fork.
        d.on_subscribe(p, NodeId::new(2), &[NodeId::new(2)]);
        let e = Event::new(EventId::new(NodeId::new(0), 0), vec![(p, 0)]);
        let receipt = d.on_recovered_event(e.clone());
        assert!(receipt.delivered);
        assert!(receipt.forwards.is_empty());
        assert!(d.cache().contains(e.id()));
        // Re-recovery is a duplicate.
        assert!(d.on_recovered_event(e).duplicate);
    }

    #[test]
    fn unsubscribe_propagates_when_no_interest_remains() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        let nbrs = [NodeId::new(1)];
        d.subscribe_local(p, &nbrs);
        let out = d.unsubscribe_local(p, &nbrs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, PubSubMessage::Unsubscribe(p));
        assert!(!d.table().knows(p));
    }

    #[test]
    fn unsubscribe_is_held_back_while_others_need_the_route() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        let nbrs = [NodeId::new(1), NodeId::new(2)];
        d.subscribe_local(p, &nbrs);
        // Neighbor 2 also subscribes through us.
        d.on_subscribe(p, NodeId::new(2), &nbrs);
        // Local unsubscription: neighbor 1 still must receive p-events
        // (for neighbor 2), so no unsubscription is sent to 1; and
        // neighbor 2 no longer needs them (only it was interested).
        let out = d.unsubscribe_local(p, &nbrs);
        let targets: Vec<NodeId> = out.iter().map(|f| f.to).collect();
        assert_eq!(targets, vec![NodeId::new(2)]);
    }

    #[test]
    fn client_subscriptions_aggregate_before_routing() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        let nbrs = [NodeId::new(1)];
        // First client: aggregate grows, subscription propagates.
        let out = d.client_subscribe(ClientId::new(0), p, &nbrs);
        assert_eq!(out.len(), 1);
        // Covered by the aggregate: second client is wire-silent.
        let out = d.client_subscribe(ClientId::new(1), p, &nbrs);
        assert!(out.is_empty());
        assert!(d.table().has_local(p));
        // First unsubscribe: refcount 2→1, no retraction.
        let out = d.client_unsubscribe(ClientId::new(0), p, &nbrs);
        assert!(out.is_empty());
        assert!(d.table().has_local(p));
        // Last client drops it: retraction propagates.
        let out = d.client_unsubscribe(ClientId::new(1), p, &nbrs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, PubSubMessage::Unsubscribe(p));
        assert!(!d.table().has_local(p));
    }

    #[test]
    fn aggregate_filter_equals_table_local_bits() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let nbrs = [NodeId::new(1)];
        d.client_subscribe(ClientId::new(0), PatternId::new(3), &nbrs);
        d.client_subscribe(ClientId::new(1), PatternId::new(3), &nbrs);
        d.client_subscribe(ClientId::new(1), PatternId::new(7), &nbrs);
        d.client_unsubscribe(ClientId::new(0), PatternId::new(3), &nbrs);
        let aggregate: Vec<PatternId> = d.clients().aggregate_patterns().collect();
        let local: Vec<PatternId> = d.table().local_patterns().collect();
        assert_eq!(aggregate, local);
        // Reset for reconfiguration preserves the aggregate.
        d.reset_routing_state();
        let local: Vec<PatternId> = d.table().local_patterns().collect();
        assert_eq!(aggregate, local);
    }

    #[test]
    fn client_fanout_delivers_each_matching_client_once() {
        let mut d = Dispatcher::new(NodeId::new(1), cfg());
        let (p, q) = (PatternId::new(1), PatternId::new(2));
        d.client_subscribe(ClientId::new(4), p, &[]);
        d.client_subscribe(ClientId::new(4), q, &[]);
        d.client_subscribe(ClientId::new(2), q, &[]);
        let e = Event::new(EventId::new(NodeId::new(0), 0), vec![(p, 0), (q, 0)]);
        let receipt = d.on_event(e.clone(), Some(NodeId::new(0)));
        assert!(receipt.delivered);
        let mut out = Vec::new();
        d.matching_clients_into(&e, &mut out);
        assert_eq!(out, vec![ClientId::new(2), ClientId::new(4)]);
    }

    #[test]
    fn reset_routing_state_keeps_local_subscriptions() {
        let mut d = Dispatcher::new(NodeId::new(0), cfg());
        let p = PatternId::new(1);
        let q = PatternId::new(2);
        d.subscribe_local(p, &[NodeId::new(1)]);
        d.on_subscribe(q, NodeId::new(1), &[NodeId::new(1)]);
        d.reset_routing_state();
        assert!(d.table().has_local(p));
        assert!(!d.table().knows(q));
        // Forwarding memory was cleared: subscribing again re-sends.
        let out = d.subscribe_local(p, &[NodeId::new(1)]);
        assert_eq!(out.len(), 1);
    }
}
