//! Network assembly helpers: instant subscription flooding.
//!
//! The paper's simulations run "with stable subscription information
//! (i.e., no (un)subscriptions are being issued)". These helpers run
//! the subscription-forwarding protocol to quiescence *outside* of
//! virtual time, producing the stable routing state the event workload
//! then runs on. The same mechanism rebuilds routes after a
//! topological reconfiguration completes.

use std::collections::{BTreeMap, VecDeque};

use eps_overlay::{NodeId, Topology};

use crate::dispatcher::{Dispatcher, Forward, PubSubMessage};
use crate::pattern::PatternId;

/// Access to the [`Dispatcher`] inside a larger per-node bundle.
///
/// The assembly helpers in this module are generic over this trait so
/// they can run over a plain `[Dispatcher]` as well as over node
/// actors that own a dispatcher next to other per-node state (RNGs, a
/// recovery algorithm, …).
pub trait DispatcherHost {
    /// The dispatcher this host wraps.
    fn dispatcher(&self) -> &Dispatcher;
    /// Mutable access to the wrapped dispatcher.
    fn dispatcher_mut(&mut self) -> &mut Dispatcher;
}

impl DispatcherHost for Dispatcher {
    fn dispatcher(&self) -> &Dispatcher {
        self
    }
    fn dispatcher_mut(&mut self) -> &mut Dispatcher {
        self
    }
}

/// A mutable reference to a host is itself a host, so the assembly
/// helpers can run over a `Vec<&mut Node>` gathered from nodes that
/// live in separate per-shard containers.
impl<H: DispatcherHost + ?Sized> DispatcherHost for &mut H {
    fn dispatcher(&self) -> &Dispatcher {
        (**self).dispatcher()
    }
    fn dispatcher_mut(&mut self) -> &mut Dispatcher {
        (**self).dispatcher_mut()
    }
}

/// Runs the subscription-forwarding protocol to quiescence: every
/// dispatcher's *local* subscriptions are propagated through the tree
/// until no new table entries appear.
///
/// Dispatcher `i` must correspond to topology node `i`. Local
/// subscriptions must already be recorded (e.g. via
/// [`Dispatcher::subscribe_local`] with an empty neighbor list, or by
/// calling this right after [`install_local_subscriptions`]).
///
/// Returns the number of subscription messages that the protocol would
/// have exchanged (useful for accounting).
///
/// # Panics
///
/// Panics if `dispatchers.len() != topology.len()`.
pub fn flood_subscriptions<H: DispatcherHost>(hosts: &mut [H], topology: &Topology) -> u64 {
    assert_eq!(
        hosts.len(),
        topology.len(),
        "one dispatcher per topology node"
    );
    let mut queue: VecDeque<(NodeId, NodeId, PatternId)> = VecDeque::new();
    let mut messages = 0u64;

    // Seed: every dispatcher re-announces its local patterns.
    for node in topology.nodes() {
        let neighbors: Vec<NodeId> = topology.neighbors(node).to_vec();
        let d = hosts[node.index()].dispatcher_mut();
        let locals: Vec<PatternId> = d.table().local_patterns().collect();
        for p in locals {
            for Forward { to, msg } in d.subscribe_local(p, &neighbors) {
                debug_assert!(matches!(msg, PubSubMessage::Subscribe(_)));
                queue.push_back((to, node, p));
            }
        }
    }

    // Propagate to quiescence.
    while let Some((to, from, pattern)) = queue.pop_front() {
        messages += 1;
        let neighbors: Vec<NodeId> = topology.neighbors(to).to_vec();
        for fwd in hosts[to.index()]
            .dispatcher_mut()
            .on_subscribe(pattern, from, &neighbors)
        {
            queue.push_back((fwd.to, to, pattern));
        }
    }
    messages
}

/// Computes the fixpoint of [`flood_subscriptions`] for a *tree*
/// overlay in closed form, without exchanging any messages.
///
/// On a tree the flooded state has an exact characterization. Root the
/// tree anywhere and let `cnt(v)` be the number of subscribers of
/// pattern `p` in the subtree of `v`, out of `total` overall. For the
/// edge between `v` and its parent `u`:
///
/// - `v` sends `Subscribe(p)` to `u` iff some subscriber is on `v`'s
///   side: `cnt(v) > 0` — and then `u`'s table routes `p` towards `v`;
/// - `u` sends `Subscribe(p)` to `v` iff some subscriber is on `u`'s
///   side: `total − cnt(v) > 0` — and then `v`'s table routes `p`
///   towards `u`.
///
/// (A dispatcher sends on an edge exactly when it has interest from
/// any other interface, which on a tree means a subscriber on its side
/// of that edge; the subscription-forwarding fixpoint follows by
/// induction along each path.) This computes those predicates directly
/// — `O(Π·N)` table installs instead of a message-at-a-time
/// simulation, which is what makes 10⁵–10⁶-node populations build in
/// seconds. The resulting per-dispatcher state (tables *and*
/// unsubscription-gating forwarding memory) is identical to what
/// [`flood_subscriptions`] produces, and the returned message count is
/// the count the flood would have exchanged; the equivalence is pinned
/// by tests and by the golden suite.
///
/// Local subscriptions must already be recorded (e.g. via
/// [`install_local_subscriptions`]); dispatcher `i` must correspond to
/// topology node `i`.
///
/// # Panics
///
/// Panics if `hosts.len() != topology.len()` or the topology is not a
/// tree.
pub fn flood_subscriptions_direct<H: DispatcherHost>(hosts: &mut [H], topology: &Topology) -> u64 {
    assert_eq!(
        hosts.len(),
        topology.len(),
        "one dispatcher per topology node"
    );
    assert!(
        topology.is_tree(),
        "direct subscription fill requires a tree overlay"
    );
    let n = hosts.len();
    if n == 0 {
        return 0;
    }

    // Parent of every node, rooting the tree at node 0 (BFS).
    let root = NodeId::new(0);
    let mut parent: Vec<NodeId> = vec![root; n];
    let mut visited = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    visited[0] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &w in topology.neighbors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                parent[w.index()] = v;
                queue.push_back(w);
            }
        }
    }

    // Subscribers of each pattern, patterns in ascending order.
    let mut subscribers: BTreeMap<PatternId, Vec<NodeId>> = BTreeMap::new();
    for (i, h) in hosts.iter().enumerate() {
        for p in h.dispatcher().table().local_patterns() {
            subscribers
                .entry(p)
                .or_default()
                .push(NodeId::new(i as u32));
        }
    }

    // Scratch subtree counts, reset via the touched list so each
    // pattern costs O(subscribers · depth), not O(N), to count.
    let mut cnt: Vec<u32> = vec![0; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut messages = 0u64;
    for (&p, subs) in &subscribers {
        let total = subs.len() as u32;
        for &s in subs {
            let mut v = s;
            loop {
                if cnt[v.index()] == 0 {
                    touched.push(v.index());
                }
                cnt[v.index()] += 1;
                if v == root {
                    break;
                }
                v = parent[v.index()];
            }
        }
        // Apply the two per-direction predicates on every edge; each
        // non-root node is the child endpoint of exactly one edge.
        for i in 1..n {
            let v = NodeId::new(i as u32);
            let u = parent[i];
            let below = cnt[i];
            if below > 0 {
                hosts[u.index()].dispatcher_mut().install_route(p, v);
                hosts[i].dispatcher_mut().mark_subscription_sent(p, u);
                messages += 1;
            }
            if total > below {
                hosts[i].dispatcher_mut().install_route(p, u);
                hosts[u.index()]
                    .dispatcher_mut()
                    .mark_subscription_sent(p, v);
                messages += 1;
            }
        }
        for &i in &touched {
            cnt[i] = 0;
        }
        touched.clear();
    }
    messages
}

/// Records `subscriptions[i]` as the local subscriptions of dispatcher
/// `i` without propagating anything.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn install_local_subscriptions<H: DispatcherHost>(
    hosts: &mut [H],
    subscriptions: &[Vec<PatternId>],
) {
    assert_eq!(hosts.len(), subscriptions.len());
    for (h, subs) in hosts.iter_mut().zip(subscriptions) {
        for &p in subs {
            h.dispatcher_mut().subscribe_local(p, &[]);
        }
    }
}

/// Records `clients[i][c]` as the subscriptions of client `c` of
/// dispatcher `i` without propagating anything. The dispatcher's
/// aggregate filter (its table's `Local` bits) becomes the union of
/// its clients' patterns; with one client per dispatcher this is
/// exactly [`install_local_subscriptions`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn install_client_subscriptions<H: DispatcherHost>(
    hosts: &mut [H],
    clients: &[Vec<Vec<PatternId>>],
) {
    assert_eq!(hosts.len(), clients.len());
    for (h, per_client) in hosts.iter_mut().zip(clients) {
        for (c, subs) in per_client.iter().enumerate() {
            let client = crate::clients::ClientId::new(c as u32);
            for &p in subs {
                h.dispatcher_mut().client_subscribe(client, p, &[]);
            }
        }
    }
}

/// Rebuilds all subscription routes from scratch for a (possibly
/// reconfigured) topology: clears neighbor-derived state on every
/// dispatcher, then re-floods local subscriptions.
///
/// This models the *completed* state of the reconfiguration protocol
/// of the paper's reference \[7\]; the disruption window between a link
/// break and this rebuild is where events are lost.
pub fn rebuild_subscription_routes<H: DispatcherHost>(hosts: &mut [H], topology: &Topology) -> u64 {
    for h in hosts.iter_mut() {
        h.dispatcher_mut().reset_routing_state();
    }
    if topology.is_tree() {
        // The closed form reaches the same fixpoint without the
        // message-at-a-time simulation (see its docs).
        flood_subscriptions_direct(hosts, topology)
    } else {
        flood_subscriptions(hosts, topology)
    }
}

/// Computes, for each event-content pattern set, which dispatchers
/// would receive it in a loss-free network: the dispatchers locally
/// subscribed to at least one of the content's patterns.
///
/// Used by the metrics layer to know the intended recipients of every
/// published event.
pub fn intended_recipients<H: DispatcherHost>(hosts: &[H], content: &[PatternId]) -> Vec<NodeId> {
    hosts
        .iter()
        .map(DispatcherHost::dispatcher)
        .filter(|d| content.iter().any(|&p| d.table().has_local(p)))
        .map(|d| d.id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::DispatcherConfig;
    use crate::event::Event;
    use eps_sim::RngFactory;

    fn build(n: usize, seed: u64) -> (Vec<Dispatcher>, Topology) {
        let factory = RngFactory::new(seed);
        let topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let dispatchers: Vec<Dispatcher> = topo
            .nodes()
            .map(|id| Dispatcher::new(id, DispatcherConfig::default()))
            .collect();
        (dispatchers, topo)
    }

    /// After flooding, every dispatcher on the path from any node to a
    /// subscriber must know the pattern, pointing towards it.
    #[test]
    fn flood_reaches_every_dispatcher() {
        let (mut ds, topo) = build(30, 1);
        let p = PatternId::new(5);
        ds[7].subscribe_local(p, &[]);
        flood_subscriptions(&mut ds, &topo);
        for node in topo.nodes() {
            assert!(
                ds[node.index()].table().knows(p),
                "dispatcher {node} does not know {p}"
            );
        }
    }

    #[test]
    fn flooded_tables_route_towards_the_subscriber() {
        let (mut ds, topo) = build(30, 2);
        let p = PatternId::new(5);
        let subscriber = NodeId::new(7);
        ds[subscriber.index()].subscribe_local(p, &[]);
        flood_subscriptions(&mut ds, &topo);
        // From every node, following the table for p hop by hop must
        // reach the subscriber.
        for start in topo.nodes() {
            let mut cur = start;
            let mut prev: Option<NodeId> = None;
            for _hop in 0..topo.len() {
                if cur == subscriber {
                    break;
                }
                let next = ds[cur.index()].table().neighbors_for(p, prev);
                assert_eq!(next.len(), 1, "tree route must be unique at {cur}");
                prev = Some(cur);
                cur = next[0];
            }
            assert_eq!(
                cur, subscriber,
                "route from {start} did not reach subscriber"
            );
        }
    }

    #[test]
    fn event_from_any_node_reaches_all_subscribers() {
        let (mut ds, topo) = build(40, 3);
        let p = PatternId::new(9);
        let subscribers = [NodeId::new(3), NodeId::new(17), NodeId::new(31)];
        for s in subscribers {
            ds[s.index()].subscribe_local(p, &[]);
        }
        flood_subscriptions(&mut ds, &topo);

        // Publish at node 0 and deliver breadth-first with no loss.
        let (event, receipt) = ds[0].publish(&[p]);
        let mut queue: VecDeque<(NodeId, NodeId, Event)> = receipt
            .forwards
            .into_iter()
            .map(|f| match f.msg {
                PubSubMessage::Event(e) => (f.to, NodeId::new(0), e),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        while let Some((to, from, e)) = queue.pop_front() {
            let r = ds[to.index()].on_event(e, Some(from));
            for f in r.forwards {
                match f.msg {
                    PubSubMessage::Event(e) => queue.push_back((f.to, to, e)),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        for s in subscribers {
            assert!(
                ds[s.index()].has_seen(event.id()),
                "subscriber {s} missed the event"
            );
            assert_eq!(ds[s.index()].delivered_total(), 1);
        }
        // Non-subscribers deliver nothing.
        assert_eq!(ds[1].delivered_total(), 0);
    }

    #[test]
    fn install_and_intended_recipients() {
        let (mut ds, topo) = build(10, 4);
        let subs: Vec<Vec<PatternId>> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    vec![PatternId::new(1)]
                } else {
                    vec![PatternId::new(2)]
                }
            })
            .collect();
        install_local_subscriptions(&mut ds, &subs);
        flood_subscriptions(&mut ds, &topo);
        let rx = intended_recipients(&ds, &[PatternId::new(1)]);
        assert_eq!(rx.len(), 5);
        assert!(rx.iter().all(|n| n.index() % 2 == 0));
        let both = intended_recipients(&ds, &[PatternId::new(1), PatternId::new(2)]);
        assert_eq!(both.len(), 10);
    }

    #[test]
    fn rebuild_after_reconfiguration_restores_routes() {
        let (mut ds, mut topo) = build(25, 5);
        let p = PatternId::new(3);
        ds[11].subscribe_local(p, &[]);
        flood_subscriptions(&mut ds, &topo);

        // Reconfigure: break one link, replace it.
        let mut rng = RngFactory::new(5).stream("reconfig");
        let plan = eps_overlay::plan_reconfiguration(&topo, &mut rng).unwrap();
        topo.remove_link(plan.broken).unwrap();
        topo.add_link(plan.replacement.0, plan.replacement.1)
            .unwrap();
        rebuild_subscription_routes(&mut ds, &topo);

        // Routes must again lead everywhere.
        for node in topo.nodes() {
            assert!(ds[node.index()].table().knows(p));
        }
    }

    #[test]
    fn direct_fill_equals_message_flood() {
        // Across several random trees and subscription draws, the
        // closed-form fill must reproduce the message flood exactly:
        // same tables, same forwarding memory, same message count.
        for seed in 1..=6u64 {
            let factory = RngFactory::new(seed);
            let topo = Topology::random_tree(40, 4, &mut factory.stream("topology"));
            let space = crate::pattern::PatternSpace::new(12, 3);
            let mut subs_rng = factory.stream("subscriptions");
            let mut flooded: Vec<Dispatcher> = topo
                .nodes()
                .map(|id| Dispatcher::new(id, DispatcherConfig::default()))
                .collect();
            for d in flooded.iter_mut() {
                for p in space.random_subscriptions(2, &mut subs_rng) {
                    d.subscribe_local(p, &[]);
                }
            }
            let mut direct = flooded.clone();
            let flood_msgs = flood_subscriptions(&mut flooded, &topo);
            let direct_msgs = flood_subscriptions_direct(&mut direct, &topo);
            assert_eq!(flood_msgs, direct_msgs, "seed {seed}: message count");
            for node in topo.nodes() {
                let (f, d) = (&flooded[node.index()], &direct[node.index()]);
                assert_eq!(f.table(), d.table(), "seed {seed}: table of {node}");
                assert_eq!(
                    f.sent_pairs(),
                    d.sent_pairs(),
                    "seed {seed}: forwarding memory of {node}"
                );
            }
        }
    }

    #[test]
    fn direct_fill_runs_over_mutable_reference_hosts() {
        // The &mut H blanket impl lets the helpers run over refs
        // gathered from separate containers (per-shard node storage).
        let (mut ds, topo) = build(10, 7);
        ds[3].subscribe_local(PatternId::new(5), &[]);
        let mut refs: Vec<&mut Dispatcher> = ds.iter_mut().collect();
        flood_subscriptions_direct(&mut refs, &topo);
        for node in topo.nodes() {
            assert!(ds[node.index()].table().knows(PatternId::new(5)));
        }
    }

    #[test]
    fn flood_message_count_is_bounded_by_tree_size() {
        let (mut ds, topo) = build(50, 6);
        let p = PatternId::new(1);
        ds[0].subscribe_local(p, &[]);
        let messages = flood_subscriptions(&mut ds, &topo);
        // One subscription travelling a 50-node tree crosses exactly
        // 49 links.
        assert_eq!(messages, 49);
    }
}
