//! The client layer: end-user subscriptions fronted by one dispatcher.
//!
//! The paper evaluates one subscriber per dispatcher; production means
//! each dispatcher (broker) fronting thousands to millions of end-user
//! subscriptions. Following the subscription-aggregation line (Shi et
//! al., arXiv 1811.07088; Shafique, arXiv 1604.06853), the dispatcher
//! keeps a [`ClientRegistry`] of per-client subscriptions and exposes
//! only the *aggregate filter* — the union of its clients' patterns —
//! to the routing layer:
//!
//! - **Covering.** A client subscription whose pattern is already in
//!   the aggregate (some other local client subscribes to it) adds no
//!   routing state and sends no `Subscribe` up the tree.
//! - **Refcounted retraction.** Unsubscription retracts a pattern from
//!   the routing tree only when the *last* local client drops it, so
//!   client churn behind a stable aggregate is wire-silent.
//!
//! The registry is one flat sorted vector of `(pattern, client)`
//! pairs. The refcount of a pattern is the length of its contiguous
//! range; local fan-out for an event merges the ranges of its (at
//! most a handful of) patterns. This keeps the per-dispatcher memory
//! at 4 bytes per client-subscription — the layout the 10⁵-node
//! populations with large client counts need — while matching against
//! the *aggregate* stays O(patterns per event), independent of the
//! number of clients.

use crate::event::Event;
use crate::pattern::PatternId;

/// Identifier of an end-user client local to one dispatcher.
///
/// Client identifiers are per-dispatcher: `(NodeId, ClientId)` is the
/// globally unique subscriber identity.
///
/// # Examples
///
/// ```
/// use eps_pubsub::ClientId;
///
/// let c = ClientId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "c3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a client id from its numeric value.
    pub const fn new(value: u32) -> Self {
        ClientId(value)
    }

    /// The numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The value as an array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Per-dispatcher registry of client subscriptions, maintaining the
/// aggregate filter by covering/merging with refcounted retraction.
///
/// [`ClientRegistry::subscribe`] and [`ClientRegistry::unsubscribe`]
/// report whether the *aggregate* changed — exactly the transitions on
/// which the dispatcher must (un)propagate routing state. With a
/// single client the aggregate is that client's subscription set and
/// every operation is a transition, which is what makes the client
/// layer an identity at `clients = 1`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientRegistry {
    /// Sorted, distinct `(pattern, client)` pairs. Grouping by pattern
    /// first makes the refcount of a pattern the length of one
    /// contiguous range and local fan-out a bounded range merge.
    index: Vec<(PatternId, ClientId)>,
}

impl ClientRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClientRegistry::default()
    }

    /// Subscribes `client` to `pattern`. Returns `true` when the
    /// pattern was *newly covered* — no other local client held it —
    /// i.e. the aggregate filter grew and the dispatcher must install
    /// routing state. Idempotent: re-subscribing is a no-op returning
    /// `false`.
    pub fn subscribe(&mut self, client: ClientId, pattern: PatternId) -> bool {
        match self.index.binary_search(&(pattern, client)) {
            Ok(_) => false,
            Err(pos) => {
                let covered = self.covers(pattern);
                self.index.insert(pos, (pattern, client));
                !covered
            }
        }
    }

    /// Unsubscribes `client` from `pattern`. Returns `true` when the
    /// *last* local client dropped the pattern — the aggregate filter
    /// shrank and the dispatcher must retract routing state. A client
    /// that was not subscribed is a no-op returning `false`.
    pub fn unsubscribe(&mut self, client: ClientId, pattern: PatternId) -> bool {
        match self.index.binary_search(&(pattern, client)) {
            Ok(pos) => {
                self.index.remove(pos);
                !self.covers(pattern)
            }
            Err(_) => false,
        }
    }

    /// The contiguous index range holding `pattern`'s pairs.
    fn range_of(&self, pattern: PatternId) -> std::ops::Range<usize> {
        let start = self.index.partition_point(|&(p, _)| p < pattern);
        let end = start + self.index[start..].partition_point(|&(p, _)| p == pattern);
        start..end
    }

    /// `true` if at least one local client subscribes to `pattern`.
    pub fn covers(&self, pattern: PatternId) -> bool {
        let start = self.index.partition_point(|&(p, _)| p < pattern);
        self.index.get(start).is_some_and(|&(p, _)| p == pattern)
    }

    /// Number of local clients subscribed to `pattern`.
    pub fn refcount(&self, pattern: PatternId) -> usize {
        self.range_of(pattern).len()
    }

    /// Total client-subscription pairs held.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if no client subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The aggregate filter: the distinct patterns any local client
    /// subscribes to, ascending. This is exactly what the routing
    /// layer sees.
    pub fn aggregate_patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        let mut last = None;
        self.index.iter().filter_map(move |&(p, _)| {
            if last == Some(p) {
                None
            } else {
                last = Some(p);
                Some(p)
            }
        })
    }

    /// Number of patterns in the aggregate filter (the routing state
    /// this dispatcher contributes to the tree).
    pub fn aggregate_len(&self) -> usize {
        self.aggregate_patterns().count()
    }

    /// The patterns `client` subscribes to, ascending. A full scan —
    /// meant for churn and introspection, not the event hot path.
    pub fn patterns_of(&self, client: ClientId) -> impl Iterator<Item = PatternId> + '_ {
        self.index
            .iter()
            .filter(move |&&(_, c)| c == client)
            .map(|&(p, _)| p)
    }

    /// Local fan-out: appends to `out` every client matching `event`,
    /// each exactly once, ascending. Clears `out` first. Cost is the
    /// sum of the matched patterns' refcounts plus a sort — i.e.
    /// proportional to the deliveries produced, never to the total
    /// client count.
    pub fn matching_clients_into(&self, event: &Event, out: &mut Vec<ClientId>) {
        out.clear();
        for pattern in event.patterns() {
            out.extend(self.index[self.range_of(pattern)].iter().map(|&(_, c)| c));
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use eps_overlay::NodeId;

    fn event(patterns: &[u16]) -> Event {
        Event::new(
            EventId::new(NodeId::new(0), 0),
            patterns.iter().map(|&p| (PatternId::new(p), 0)).collect(),
        )
    }

    #[test]
    fn first_subscription_grows_the_aggregate() {
        let mut reg = ClientRegistry::new();
        assert!(reg.subscribe(ClientId::new(0), PatternId::new(5)));
        // Covered: a second client adds no routing state.
        assert!(!reg.subscribe(ClientId::new(1), PatternId::new(5)));
        assert_eq!(reg.refcount(PatternId::new(5)), 2);
        assert_eq!(reg.aggregate_len(), 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn subscribe_is_idempotent() {
        let mut reg = ClientRegistry::new();
        assert!(reg.subscribe(ClientId::new(0), PatternId::new(5)));
        assert!(!reg.subscribe(ClientId::new(0), PatternId::new(5)));
        assert_eq!(reg.refcount(PatternId::new(5)), 1);
    }

    #[test]
    fn retraction_waits_for_the_last_client() {
        let mut reg = ClientRegistry::new();
        reg.subscribe(ClientId::new(0), PatternId::new(5));
        reg.subscribe(ClientId::new(1), PatternId::new(5));
        assert!(!reg.unsubscribe(ClientId::new(0), PatternId::new(5)));
        assert!(reg.covers(PatternId::new(5)));
        assert!(reg.unsubscribe(ClientId::new(1), PatternId::new(5)));
        assert!(!reg.covers(PatternId::new(5)));
        assert!(reg.is_empty());
    }

    #[test]
    fn unsubscribe_of_absent_pair_is_a_noop() {
        let mut reg = ClientRegistry::new();
        reg.subscribe(ClientId::new(0), PatternId::new(5));
        assert!(!reg.unsubscribe(ClientId::new(1), PatternId::new(5)));
        assert!(!reg.unsubscribe(ClientId::new(0), PatternId::new(6)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn matching_clients_are_distinct_and_sorted() {
        let mut reg = ClientRegistry::new();
        // Client 2 matches via two patterns: delivered exactly once.
        reg.subscribe(ClientId::new(2), PatternId::new(1));
        reg.subscribe(ClientId::new(2), PatternId::new(3));
        reg.subscribe(ClientId::new(0), PatternId::new(3));
        reg.subscribe(ClientId::new(7), PatternId::new(9));
        let mut out = Vec::new();
        reg.matching_clients_into(&event(&[1, 3]), &mut out);
        assert_eq!(out, vec![ClientId::new(0), ClientId::new(2)]);
        reg.matching_clients_into(&event(&[4]), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn aggregate_patterns_are_distinct_and_sorted() {
        let mut reg = ClientRegistry::new();
        reg.subscribe(ClientId::new(1), PatternId::new(9));
        reg.subscribe(ClientId::new(0), PatternId::new(2));
        reg.subscribe(ClientId::new(2), PatternId::new(9));
        let agg: Vec<PatternId> = reg.aggregate_patterns().collect();
        assert_eq!(agg, vec![PatternId::new(2), PatternId::new(9)]);
        assert_eq!(reg.aggregate_len(), 2);
    }

    #[test]
    fn patterns_of_scans_one_client() {
        let mut reg = ClientRegistry::new();
        reg.subscribe(ClientId::new(1), PatternId::new(9));
        reg.subscribe(ClientId::new(1), PatternId::new(2));
        reg.subscribe(ClientId::new(0), PatternId::new(4));
        let pats: Vec<PatternId> = reg.patterns_of(ClientId::new(1)).collect();
        assert_eq!(pats, vec![PatternId::new(2), PatternId::new(9)]);
    }
}
