//! The bounded event cache each dispatcher keeps to satisfy
//! retransmission requests.
//!
//! The paper's evaluation uses "a simple FIFO buffering strategy where
//! each dispatcher caches only events for which it is either the
//! publisher or a subscriber" (Section IV-A), and flags buffer
//! optimization (their reference \[13\], Ozkasap et al.) as ongoing
//! work. This module implements the paper's FIFO policy plus two
//! alternatives for that investigation, selectable via
//! [`EvictionPolicy`]:
//!
//! - [`EvictionPolicy::Fifo`] — the paper's policy: evict oldest.
//! - [`EvictionPolicy::Random`] — evict a uniformly random entry; the
//!   classic low-state approximation used in epidemic-buffering work.
//! - [`EvictionPolicy::SourceBiased`] — reserve a share of the buffer
//!   for self-published events, which only the publisher can serve to
//!   publisher-bound gossip; received events compete for the rest.

use std::collections::{HashMap, VecDeque};

use eps_overlay::NodeId;
use eps_sim::Rng;

use crate::event::{Event, EventId};
use crate::pattern::{PatternId, DENSE_UNIVERSE_MAX};
use crate::summary::{RangeRef, RangeSummary, SummaryIndex};

/// Which cached event to sacrifice when the buffer is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EvictionPolicy {
    /// Evict the oldest entry (the paper's policy).
    #[default]
    Fifo,
    /// Evict a uniformly random entry; deterministic per seed.
    Random {
        /// Seed for the eviction choices.
        seed: u64,
    },
    /// Keep self-published events in a protected sub-queue sized
    /// `own_permille`/1000 of the capacity; within each class,
    /// eviction is FIFO. Only the publisher can answer
    /// publisher-bound gossip, so its own events are worth more
    /// buffer-seconds than a copy some other subscriber also holds.
    SourceBiased {
        /// Share of the capacity reserved for own events, in ‰.
        own_permille: u16,
    },
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::Fifo => write!(f, "fifo"),
            EvictionPolicy::Random { .. } => write!(f, "random"),
            EvictionPolicy::SourceBiased { own_permille } => {
                write!(f, "source-biased({own_permille}permille)")
            }
        }
    }
}

enum PolicyState {
    Fifo {
        order: VecDeque<EventId>,
    },
    Random {
        live: Vec<EventId>,
        /// Keyed lookups only — never iterated, so the HashMap's
        /// arbitrary ordering can't leak into any output (victims are
        /// drawn from `live` by RNG index).
        pos: HashMap<EventId, usize>,
        rng: Rng,
    },
    SourceBiased {
        own: VecDeque<EventId>,
        other: VecDeque<EventId>,
        own_cap: usize,
    },
}

impl PolicyState {
    fn new(policy: EvictionPolicy, capacity: usize) -> Self {
        match policy {
            EvictionPolicy::Fifo => PolicyState::Fifo {
                order: VecDeque::new(),
            },
            EvictionPolicy::Random { seed } => PolicyState::Random {
                live: Vec::new(),
                pos: HashMap::new(),
                rng: Rng::from_seed(seed),
            },
            EvictionPolicy::SourceBiased { own_permille } => {
                assert!(
                    own_permille <= 1000,
                    "own_permille is a fraction of 1000, got {own_permille}"
                );
                PolicyState::SourceBiased {
                    own: VecDeque::new(),
                    other: VecDeque::new(),
                    own_cap: capacity * own_permille as usize / 1000,
                }
            }
        }
    }

    fn note_insert(&mut self, id: EventId, is_own: bool) {
        match self {
            PolicyState::Fifo { order } => order.push_back(id),
            PolicyState::Random { live, pos, .. } => {
                pos.insert(id, live.len());
                live.push(id);
            }
            PolicyState::SourceBiased { own, other, .. } => {
                if is_own {
                    own.push_back(id);
                } else {
                    other.push_back(id);
                }
            }
        }
    }

    /// Picks and removes the eviction victim. Must only be called on a
    /// non-empty cache.
    fn pick_victim(&mut self) -> EventId {
        match self {
            PolicyState::Fifo { order } => order.pop_front().expect("full cache has a FIFO head"),
            PolicyState::Random { live, pos, rng } => {
                let idx = rng.random_range(0..live.len());
                let id = live.swap_remove(idx);
                pos.remove(&id);
                if let Some(&moved) = live.get(idx) {
                    pos.insert(moved, idx);
                }
                id
            }
            PolicyState::SourceBiased {
                own,
                other,
                own_cap,
            } => {
                // Evict from whichever class is over its share; the
                // protected class only pays when it alone is over.
                if own.len() > *own_cap || other.is_empty() {
                    own.pop_front().expect("some class must be non-empty")
                } else {
                    other.pop_front().expect("checked non-empty")
                }
            }
        }
    }
}

/// A bounded cache of β events with constant-time lookup by event id
/// and by (source, pattern, per-pattern sequence number).
///
/// # Examples
///
/// ```
/// use eps_pubsub::{Event, EventCache, EventId, PatternId};
/// use eps_overlay::NodeId;
///
/// let mut cache = EventCache::new(2);
/// for seq in 0..3 {
///     let id = EventId::new(NodeId::new(0), seq);
///     cache.insert(Event::new(id, vec![(PatternId::new(1), seq)]));
/// }
/// // Capacity 2, FIFO: the oldest event was evicted.
/// assert!(cache.get(EventId::new(NodeId::new(0), 0)).is_none());
/// assert!(cache.get(EventId::new(NodeId::new(0), 2)).is_some());
/// ```
pub struct EventCache {
    capacity: usize,
    owner: Option<NodeId>,
    policy: PolicyState,
    // Insertion order for iteration; may contain evicted ids, which
    // are skipped and compacted away amortized. This deque — not the
    // `events` HashMap — is the only iteration order ever exposed.
    insertion: VecDeque<EventId>,
    // Keyed lookups only (iteration goes through `insertion`), so the
    // HashMap's arbitrary ordering can't leak into any output.
    events: HashMap<EventId, Event>,
    // Keyed lookups only — never iterated (see `events`).
    by_pattern_seq: HashMap<(NodeId, PatternId, u64), EventId>,
    // Per-pattern index over the live cache contents, kept exact
    // (updated on insert and eviction), each list in insertion order:
    // `ids_matching` — the digest-construction hot path — is a slice
    // copy instead of a scan of the whole cache.
    by_pattern: PatternIndex,
    // Hash-range summary forest over the cached ids, maintained
    // incrementally on insert/evict (O(log C) per operation — never
    // rebuilt per round). `None` unless the recovery algorithm needs
    // it: the trees cost memory per cached event, so only the
    // summary-digest family pays for them.
    summary: Option<SummaryIndex>,
    // Eviction tombstones: the summary forest over ids this cache has
    // admitted and since evicted (re-admitting an id clears its
    // tombstone, so live and tombstoned sets stay disjoint). Together
    // with `summary` they form the *seen* view pull-mode summary
    // reconciliation announces, so peers stop re-serving surplus this
    // cache has already consumed. Enabled with the summary index; a
    // tombstone is three words per evicted id — far below the events
    // the cache itself holds.
    tombstones: Option<SummaryIndex>,
    inserted_total: u64,
    evicted_total: u64,
}

/// The per-pattern id index of one cache.
///
/// Dense-indexed by [`PatternId::index`] for small universes; at large
/// universes (past [`DENSE_UNIVERSE_MAX`]) a cache of β events can
/// only ever touch a few hundred patterns, so a `Vec` of Π empty
/// `Vec`s per node would dominate the 10⁵–10⁶-node memory budget and a
/// map over the occupied patterns is used instead. Keyed lookups only
/// — never iterated, so the switch cannot change any observable
/// output; within a pattern, ids keep insertion order in both layouts.
#[derive(Clone)]
enum PatternIndex {
    Dense(Vec<Vec<EventId>>),
    Sparse(HashMap<u16, Vec<EventId>>),
}

impl PatternIndex {
    fn new(universe: usize) -> Self {
        if universe > DENSE_UNIVERSE_MAX {
            PatternIndex::Sparse(HashMap::new())
        } else {
            PatternIndex::Dense(Vec::new())
        }
    }

    fn push(&mut self, pattern: PatternId, id: EventId) {
        match self {
            PatternIndex::Dense(lists) => {
                let idx = pattern.index();
                if idx >= lists.len() {
                    lists.resize_with(idx + 1, Vec::new);
                }
                lists[idx].push(id);
            }
            PatternIndex::Sparse(lists) => lists.entry(pattern.value()).or_default().push(id),
        }
    }

    fn remove(&mut self, pattern: PatternId, id: EventId) {
        match self {
            PatternIndex::Dense(lists) => {
                if let Some(list) = lists.get_mut(pattern.index()) {
                    list.retain(|&x| x != id);
                }
            }
            PatternIndex::Sparse(lists) => {
                if let Some(list) = lists.get_mut(&pattern.value()) {
                    list.retain(|&x| x != id);
                    if list.is_empty() {
                        lists.remove(&pattern.value());
                    }
                }
            }
        }
    }

    fn get(&self, pattern: PatternId) -> Option<&Vec<EventId>> {
        match self {
            PatternIndex::Dense(lists) => lists.get(pattern.index()),
            PatternIndex::Sparse(lists) => lists.get(&pattern.value()),
        }
    }
}

impl std::fmt::Debug for EventCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventCache")
            .field("capacity", &self.capacity)
            .field("len", &self.events.len())
            .field("inserted_total", &self.inserted_total)
            .field("evicted_total", &self.evicted_total)
            .finish()
    }
}

impl Clone for EventCache {
    fn clone(&self) -> Self {
        // Policies with internal RNG state clone structurally.
        let policy = match &self.policy {
            PolicyState::Fifo { order } => PolicyState::Fifo {
                order: order.clone(),
            },
            PolicyState::Random { live, pos, rng } => PolicyState::Random {
                live: live.clone(),
                pos: pos.clone(),
                rng: rng.clone(),
            },
            PolicyState::SourceBiased {
                own,
                other,
                own_cap,
            } => PolicyState::SourceBiased {
                own: own.clone(),
                other: other.clone(),
                own_cap: *own_cap,
            },
        };
        EventCache {
            capacity: self.capacity,
            owner: self.owner,
            policy,
            insertion: self.insertion.clone(),
            events: self.events.clone(),
            by_pattern_seq: self.by_pattern_seq.clone(),
            by_pattern: self.by_pattern.clone(),
            summary: self.summary.clone(),
            tombstones: self.tombstones.clone(),
            inserted_total: self.inserted_total,
            evicted_total: self.evicted_total,
        }
    }
}

impl EventCache {
    /// Creates a FIFO cache holding at most `capacity` events (β). A
    /// zero capacity caches nothing — useful for failure injection.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Fifo, None)
    }

    /// Creates a cache with an explicit eviction policy. `owner` is
    /// the dispatcher holding the cache; it is required by
    /// [`EvictionPolicy::SourceBiased`] to classify events.
    ///
    /// # Panics
    ///
    /// Panics if a source-biased policy is configured without an
    /// owner, or with a share above 1000 ‰.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy, owner: Option<NodeId>) -> Self {
        Self::with_policy_sized(capacity, policy, owner, 0)
    }

    /// Like [`EventCache::with_policy`], with a pattern-universe size
    /// hint (Π) that selects the per-pattern index layout: large
    /// universes index only the occupied patterns instead of
    /// allocating Π dense lists. Purely a layout hint — behavior is
    /// identical for any value; `0` means "unknown" (dense).
    pub fn with_policy_sized(
        capacity: usize,
        policy: EvictionPolicy,
        owner: Option<NodeId>,
        universe: usize,
    ) -> Self {
        if matches!(policy, EvictionPolicy::SourceBiased { .. }) {
            assert!(owner.is_some(), "a source-biased cache must know its owner");
        }
        EventCache {
            capacity,
            owner,
            policy: PolicyState::new(policy, capacity),
            insertion: VecDeque::new(),
            events: HashMap::new(),
            by_pattern_seq: HashMap::new(),
            by_pattern: PatternIndex::new(universe),
            summary: None,
            tombstones: None,
            inserted_total: 0,
            evicted_total: 0,
        }
    }

    /// The configured capacity (β).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently cached.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total insertions ever performed.
    pub fn inserted_total(&self) -> u64 {
        self.inserted_total
    }

    /// Total evictions ever performed.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Inserts an event, evicting per policy if full. Re-inserting an
    /// already-cached event is a no-op (the buffer is not an LRU: a
    /// duplicate arrival does not extend an event's life).
    pub fn insert(&mut self, event: Event) {
        if self.capacity == 0 || self.events.contains_key(&event.id()) {
            return;
        }
        if self.events.len() == self.capacity {
            let victim = self.policy.pick_victim();
            self.forget(victim);
            self.evicted_total += 1;
        }
        let id = event.id();
        for &(p, seq) in event.pattern_seqs() {
            self.by_pattern_seq.insert((id.source(), p, seq), id);
            self.by_pattern.push(p, id);
            if let Some(summary) = &mut self.summary {
                summary.add(p, id);
            }
            // A re-admitted id moves from tombstoned back to live, so
            // the seen view never double-counts it.
            if let Some(tombstones) = &mut self.tombstones {
                tombstones.discard(p, id);
            }
        }
        let is_own = self.owner == Some(id.source());
        self.policy.note_insert(id, is_own);
        self.insertion.push_back(id);
        self.events.insert(id, event);
        self.inserted_total += 1;
        self.compact();
    }

    /// Drops stale iteration entries once they dominate, keeping
    /// iteration amortized O(live).
    fn compact(&mut self) {
        if self.insertion.len() > 2 * self.events.len().max(16) {
            self.insertion.retain(|id| self.events.contains_key(id));
        }
    }

    fn forget(&mut self, id: EventId) {
        if let Some(event) = self.events.remove(&id) {
            for &(p, seq) in event.pattern_seqs() {
                self.by_pattern_seq.remove(&(id.source(), p, seq));
                self.by_pattern.remove(p, id);
                if let Some(summary) = &mut self.summary {
                    summary.remove(p, id);
                }
                if let Some(tombstones) = &mut self.tombstones {
                    tombstones.add(p, id);
                }
            }
        }
    }

    /// Looks up an event by id.
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events.get(&id)
    }

    /// `true` if the event is cached.
    pub fn contains(&self, id: EventId) -> bool {
        self.events.contains_key(&id)
    }

    /// Looks up an event by its (source, pattern, per-pattern
    /// sequence) coordinates — the identification used by the pull
    /// algorithms' negative digests.
    pub fn get_by_pattern_seq(
        &self,
        source: NodeId,
        pattern: PatternId,
        seq: u64,
    ) -> Option<&Event> {
        self.by_pattern_seq
            .get(&(source, pattern, seq))
            .and_then(|id| self.events.get(id))
    }

    /// Ids of all cached events matching `pattern`, in insertion order
    /// — the positive digest content of the push algorithm. Served
    /// from the exact per-pattern index: a copy of the live id list,
    /// not a scan of the whole cache.
    pub fn ids_matching(&self, pattern: PatternId) -> Vec<EventId> {
        self.by_pattern.get(pattern).cloned().unwrap_or_default()
    }

    /// Iterates over cached events in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.insertion.iter().filter_map(|id| self.events.get(id))
    }

    /// Turns on the hash-range summary index (see
    /// [`crate::summary`]). From here on, every insert and eviction
    /// updates the per-pattern trees incrementally. Events already
    /// cached are indexed now, once — there is no per-round rebuild.
    pub fn enable_summary_index(&mut self) {
        let mut index = SummaryIndex::new();
        for event in self.insertion.iter().filter_map(|id| self.events.get(id)) {
            for &(p, _) in event.pattern_seqs() {
                index.add(p, event.id());
            }
        }
        self.summary = Some(index);
        // Evictions from here on are tombstoned; anything evicted
        // before enabling predates the recovery algorithm entirely.
        self.tombstones = Some(SummaryIndex::new());
    }

    /// `true` if [`EventCache::enable_summary_index`] has been called.
    pub fn has_summary_index(&self) -> bool {
        self.summary.is_some()
    }

    /// The hash-range summary index over the cached ids.
    ///
    /// # Panics
    ///
    /// Panics if the index was never enabled — the summary digest
    /// family must be registered with `needs_summary_index` so the
    /// dispatcher turns it on at construction.
    pub fn summary_index(&self) -> &SummaryIndex {
        self.summary
            .as_ref()
            .expect("summary index not enabled; the algorithm must declare needs_summary_index")
    }

    /// The aggregate of `pattern`'s **seen** view over `range`: every
    /// id this cache has ever admitted — the live residents plus the
    /// eviction tombstones. The two sets are disjoint (re-admitting an
    /// evicted id clears its tombstone), so counts add and hashes XOR.
    /// Pull-mode summary reconciliation announces and compares this
    /// view: a peer must not serve surplus the cache has already
    /// consumed and evicted.
    ///
    /// # Panics
    ///
    /// Panics if the summary index was never enabled (see
    /// [`EventCache::summary_index`]).
    pub fn seen_summary(&self, pattern: PatternId, range: RangeRef) -> RangeSummary {
        let live = self.summary_index().summarize(pattern, range);
        match &self.tombstones {
            Some(tombstones) => {
                let dead = tombstones.summarize(pattern, range);
                RangeSummary {
                    range,
                    count: live.count + dead.count,
                    hash: live.hash ^ dead.hash,
                }
            }
            None => live,
        }
    }

    /// The complete seen-view id list of `range` under `pattern`: the
    /// live residents (in leaf/insertion order) followed by the
    /// tombstoned ids — the pull-mode expansion of a small range.
    ///
    /// # Panics
    ///
    /// Panics if the summary index was never enabled.
    pub fn seen_ids_in(&self, pattern: PatternId, range: RangeRef) -> Vec<EventId> {
        let mut ids = self.summary_index().ids_in(pattern, range);
        if let Some(tombstones) = &self.tombstones {
            ids.extend(tombstones.ids_in(pattern, range));
        }
        ids
    }

    /// Evicted ids currently tombstoned under `pattern`.
    pub fn tombstoned(&self, pattern: PatternId) -> u64 {
        self.tombstones
            .as_ref()
            .map_or(0, |t| t.root(pattern).count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(source: u32, seq: u64, patterns: &[(u16, u64)]) -> Event {
        Event::new(
            EventId::new(NodeId::new(source), seq),
            patterns
                .iter()
                .map(|&(p, s)| (PatternId::new(p), s))
                .collect(),
        )
    }

    #[test]
    fn fifo_eviction_order() {
        let mut c = EventCache::new(3);
        for seq in 0..5 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.evicted_total(), 2);
        assert!(!c.contains(EventId::new(NodeId::new(0), 0)));
        assert!(!c.contains(EventId::new(NodeId::new(0), 1)));
        assert!(c.contains(EventId::new(NodeId::new(0), 2)));
        assert!(c.contains(EventId::new(NodeId::new(0), 4)));
    }

    #[test]
    fn reinsert_does_not_refresh_position() {
        let mut c = EventCache::new(2);
        c.insert(ev(0, 0, &[(1, 0)]));
        c.insert(ev(0, 1, &[(1, 1)]));
        c.insert(ev(0, 0, &[(1, 0)])); // no-op
        c.insert(ev(0, 2, &[(1, 2)])); // evicts seq 0
        assert!(!c.contains(EventId::new(NodeId::new(0), 0)));
        assert!(c.contains(EventId::new(NodeId::new(0), 1)));
    }

    #[test]
    fn pattern_seq_index_tracks_eviction() {
        let mut c = EventCache::new(1);
        c.insert(ev(3, 0, &[(7, 42)]));
        assert!(c
            .get_by_pattern_seq(NodeId::new(3), PatternId::new(7), 42)
            .is_some());
        c.insert(ev(3, 1, &[(7, 43)]));
        assert!(c
            .get_by_pattern_seq(NodeId::new(3), PatternId::new(7), 42)
            .is_none());
        assert!(c
            .get_by_pattern_seq(NodeId::new(3), PatternId::new(7), 43)
            .is_some());
    }

    #[test]
    fn ids_matching_filters_by_pattern() {
        let mut c = EventCache::new(10);
        c.insert(ev(0, 0, &[(1, 0)]));
        c.insert(ev(0, 1, &[(2, 0)]));
        c.insert(ev(0, 2, &[(1, 1), (2, 1)]));
        let ids = c.ids_matching(PatternId::new(1));
        assert_eq!(
            ids,
            vec![
                EventId::new(NodeId::new(0), 0),
                EventId::new(NodeId::new(0), 2)
            ]
        );
    }

    #[test]
    fn ids_matching_tracks_eviction_exactly() {
        let mut c = EventCache::new(2);
        c.insert(ev(0, 0, &[(1, 0)]));
        c.insert(ev(0, 1, &[(1, 1), (2, 0)]));
        c.insert(ev(0, 2, &[(2, 1)])); // evicts seq 0
        assert_eq!(
            c.ids_matching(PatternId::new(1)),
            vec![EventId::new(NodeId::new(0), 1)]
        );
        assert_eq!(
            c.ids_matching(PatternId::new(2)),
            vec![
                EventId::new(NodeId::new(0), 1),
                EventId::new(NodeId::new(0), 2)
            ]
        );
        assert!(c.ids_matching(PatternId::new(3)).is_empty());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = EventCache::new(0);
        c.insert(ev(0, 0, &[(1, 0)]));
        assert!(c.is_empty());
        assert_eq!(c.inserted_total(), 0);
    }

    #[test]
    fn never_exceeds_capacity_under_any_policy() {
        for policy in [
            EvictionPolicy::Fifo,
            EvictionPolicy::Random { seed: 7 },
            EvictionPolicy::SourceBiased { own_permille: 300 },
        ] {
            let mut c = EventCache::with_policy(7, policy, Some(NodeId::new(0)));
            for seq in 0..100 {
                c.insert(ev((seq % 3) as u32, seq, &[(1, seq)]));
                assert!(c.len() <= 7, "{policy} exceeded capacity");
            }
            assert_eq!(c.inserted_total(), 100, "{policy}");
            assert_eq!(c.evicted_total(), 93, "{policy}");
        }
    }

    #[test]
    fn iter_is_insertion_order() {
        let mut c = EventCache::new(3);
        for seq in 0..3 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        let seqs: Vec<u64> = c.iter().map(|e| e.id().seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn random_eviction_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut c = EventCache::with_policy(5, EvictionPolicy::Random { seed }, None);
            for seq in 0..50 {
                c.insert(ev(0, seq, &[(1, seq)]));
            }
            let mut kept: Vec<u64> = c.iter().map(|e| e.id().seq()).collect();
            kept.sort_unstable();
            kept
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn random_eviction_spreads_over_ages() {
        let mut c = EventCache::with_policy(50, EvictionPolicy::Random { seed: 3 }, None);
        for seq in 0..500 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        // Unlike FIFO, some old events should survive.
        let oldest_kept = c.iter().map(|e| e.id().seq()).min().unwrap();
        assert!(oldest_kept < 450, "oldest kept: {oldest_kept}");
    }

    #[test]
    fn source_biased_protects_own_events() {
        let owner = NodeId::new(9);
        let mut c = EventCache::with_policy(
            10,
            EvictionPolicy::SourceBiased { own_permille: 500 },
            Some(owner),
        );
        // 5 own events, then a flood of foreign ones.
        for seq in 0..5 {
            c.insert(ev(9, seq, &[(1, seq)]));
        }
        for seq in 0..100 {
            c.insert(ev(0, seq, &[(2, seq)]));
        }
        // The own events (within the 50% share) all survive.
        for seq in 0..5 {
            assert!(
                c.contains(EventId::new(owner, seq)),
                "own event {seq} evicted"
            );
        }
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn source_biased_own_overflow_evicts_own() {
        let owner = NodeId::new(9);
        let mut c = EventCache::with_policy(
            10,
            EvictionPolicy::SourceBiased { own_permille: 200 },
            Some(owner),
        );
        for seq in 0..10 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        // Own events beyond the 20% share displace older own events
        // once the cache is full.
        for seq in 0..5 {
            c.insert(ev(9, seq, &[(2, seq)]));
        }
        assert_eq!(c.len(), 10);
        let own_count = c.iter().filter(|e| e.source() == owner).count();
        assert!(own_count >= 2, "own events: {own_count}");
    }

    #[test]
    #[should_panic]
    fn source_biased_without_owner_panics() {
        let _ =
            EventCache::with_policy(10, EvictionPolicy::SourceBiased { own_permille: 500 }, None);
    }

    #[test]
    fn compaction_keeps_iteration_correct() {
        let mut c = EventCache::with_policy(4, EvictionPolicy::Random { seed: 1 }, None);
        for seq in 0..1000 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        let live: Vec<EventId> = c.iter().map(|e| e.id()).collect();
        assert_eq!(live.len(), 4);
        assert!(live.iter().all(|&id| c.contains(id)));
    }

    #[test]
    fn sparse_pattern_index_matches_dense_behavior() {
        // Same operation sequence against a dense-hinted and a
        // sparse-hinted cache: every observable must agree.
        let mut dense = EventCache::with_policy_sized(3, EvictionPolicy::Fifo, None, 70);
        let mut sparse =
            EventCache::with_policy_sized(3, EvictionPolicy::Fifo, None, DENSE_UNIVERSE_MAX + 1);
        for seq in 0..10 {
            let e = ev(
                (seq % 2) as u32,
                seq,
                &[(1, seq), ((seq % 3) as u16 + 2, seq)],
            );
            dense.insert(e.clone());
            sparse.insert(e);
        }
        for p in 0..6u16 {
            assert_eq!(
                dense.ids_matching(PatternId::new(p)),
                sparse.ids_matching(PatternId::new(p)),
                "pattern {p}"
            );
        }
        assert_eq!(dense.len(), sparse.len());
        assert_eq!(dense.evicted_total(), sparse.evicted_total());
        let d: Vec<EventId> = dense.iter().map(Event::id).collect();
        let s: Vec<EventId> = sparse.iter().map(Event::id).collect();
        assert_eq!(d, s);
    }

    #[test]
    fn summary_index_tracks_insert_and_eviction_exactly() {
        use crate::summary::RangeRef;

        let mut c = EventCache::new(3);
        c.enable_summary_index();
        for seq in 0..10 {
            c.insert(ev(0, seq, &[(1, seq), ((seq % 2) as u16 + 2, seq)]));
            // After every operation the tree must agree with the exact
            // per-pattern index, pattern by pattern.
            for p in [1u16, 2, 3] {
                let pattern = PatternId::new(p);
                let ids = c.ids_matching(pattern);
                let root = c.summary_index().root(pattern);
                assert_eq!(root.count, ids.len() as u64, "pattern {p} count");
                let mut from_tree = c.summary_index().ids_in(pattern, RangeRef::ROOT);
                let mut expected = ids;
                from_tree.sort();
                expected.sort();
                assert_eq!(from_tree, expected, "pattern {p} ids");
            }
        }
    }

    #[test]
    fn enable_summary_index_indexes_existing_contents() {
        let mut c = EventCache::new(8);
        for seq in 0..5 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        assert!(!c.has_summary_index());
        c.enable_summary_index();
        assert_eq!(c.summary_index().root(PatternId::new(1)).count, 5);
    }

    #[test]
    #[should_panic]
    fn summary_index_panics_when_disabled() {
        let c = EventCache::new(8);
        let _ = c.summary_index();
    }

    #[test]
    fn seen_view_unions_live_and_tombstoned_ids() {
        let mut c = EventCache::new(2);
        c.enable_summary_index();
        let p = PatternId::new(1);
        for seq in 0..5 {
            c.insert(ev(0, seq, &[(1, seq)]));
        }
        // 3 evicted, 2 live; the seen view covers all 5.
        assert_eq!(c.tombstoned(p), 3);
        let root = c.seen_summary(p, RangeRef::ROOT);
        assert_eq!(root.count, 5);
        let mut ids = c.seen_ids_in(p, RangeRef::ROOT);
        ids.sort();
        let expected: Vec<EventId> = (0..5).map(|s| EventId::new(NodeId::new(0), s)).collect();
        assert_eq!(ids, expected);
        let hash = expected
            .iter()
            .fold(0u64, |acc, &id| acc ^ crate::summary::mix_event_id(id));
        assert_eq!(root.hash, hash, "disjoint sets XOR into the union hash");
    }

    #[test]
    fn readmitting_an_evicted_id_clears_its_tombstone() {
        let mut c = EventCache::new(1);
        c.enable_summary_index();
        let p = PatternId::new(1);
        c.insert(ev(0, 0, &[(1, 0)]));
        c.insert(ev(0, 1, &[(1, 1)])); // evicts seq 0
        assert_eq!(c.tombstoned(p), 1);
        c.insert(ev(0, 0, &[(1, 0)])); // readmits seq 0, evicts seq 1
        assert_eq!(c.tombstoned(p), 1, "seq 1 tombstoned, seq 0 revived");
        assert_eq!(c.seen_summary(p, RangeRef::ROOT).count, 2);
        assert!(c.contains(EventId::new(NodeId::new(0), 0)));
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(EvictionPolicy::Fifo.to_string(), "fifo");
        assert_eq!(EvictionPolicy::Random { seed: 1 }.to_string(), "random");
        assert!(EvictionPolicy::SourceBiased { own_permille: 250 }
            .to_string()
            .starts_with("source-biased"));
    }
}
