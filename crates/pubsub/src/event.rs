//! Events and their identifiers.
//!
//! Event identifiers follow Section III of the paper: the pair (source,
//! per-source sequence number) is globally unique. To support the pull
//! algorithms' loss detection, each event additionally carries, for
//! every pattern it matches, a sequence number incremented at the
//! source each time it publishes an event for that pattern. To support
//! publisher-based pull, event messages also record the route travelled
//! so far (the address of each dispatcher encountered is appended).
//!
//! # Performance model
//!
//! An event is forwarded (and therefore cloned) once per hop of the
//! dispatching tree and once per gossip retransmission. The immutable
//! content — the pattern/sequence pairs — lives behind an [`Arc`], so
//! a clone is a refcount bump, not a deep copy. The recorded route is
//! a second `Arc` with copy-on-write semantics ([`Arc::make_mut`]):
//! when route recording is off the route is shared by every copy; when
//! it is on, only the hop that actually extends the route pays for a
//! fresh vector.

use std::sync::Arc;

use eps_overlay::NodeId;

use crate::pattern::PatternId;

/// Wire cost of one recorded route hop, in bits: a dispatcher address
/// is a 32-bit identifier on the wire, and the byte codec in
/// `eps-gossip` encodes each hop as exactly four bytes. Every place
/// that accounts for route bytes ([`Event::wire_bits`], the gossip
/// envelope, the codec) derives from this one constant.
pub const ROUTE_HOP_BITS: u64 = 32;

/// Globally unique event identifier: source plus a monotonically
/// increasing per-source sequence number (paper, footnote 3).
///
/// # Examples
///
/// ```
/// use eps_pubsub::EventId;
/// use eps_overlay::NodeId;
///
/// let id = EventId::new(NodeId::new(4), 17);
/// assert_eq!(id.to_string(), "d4#17");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId {
    source: NodeId,
    seq: u64,
}

impl EventId {
    /// Creates an event id.
    pub const fn new(source: NodeId, seq: u64) -> Self {
        EventId { source, seq }
    }

    /// The publishing dispatcher.
    pub const fn source(self) -> NodeId {
        self.source
    }

    /// The per-source sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.source, self.seq)
    }
}

/// The immutable content of an event, shared between all copies.
#[derive(PartialEq, Eq, Debug)]
struct EventData {
    /// Sorted, distinct patterns matched by this event, with the
    /// per-(source, pattern) sequence number assigned at publish time.
    pattern_seqs: Vec<(PatternId, u64)>,
}

/// A published event as it travels the dispatching tree.
///
/// Contains the content (the patterns it matches), the per-pattern
/// sequence numbers assigned at the source, and the route recorded so
/// far. Cloned at every forwarding hop, as a real message would be —
/// but the clone only bumps two reference counts (see the module
/// docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Event {
    id: EventId,
    data: Arc<EventData>,
    /// Dispatchers traversed so far, starting with the source.
    route: Arc<Vec<NodeId>>,
}

impl Event {
    /// Creates a new event at its source.
    ///
    /// `pattern_seqs` must be sorted by pattern and duplicate-free —
    /// the publisher builds it from [`crate::PatternSpace::random_content`]
    /// plus its per-pattern counters.
    ///
    /// # Panics
    ///
    /// Panics if `pattern_seqs` is empty, unsorted, or has duplicates.
    pub fn new(id: EventId, pattern_seqs: Vec<(PatternId, u64)>) -> Self {
        assert!(!pattern_seqs.is_empty(), "event must match some pattern");
        assert!(
            pattern_seqs.windows(2).all(|w| w[0].0 < w[1].0),
            "pattern list must be sorted and distinct"
        );
        Event {
            id,
            data: Arc::new(EventData { pattern_seqs }),
            route: Arc::new(vec![id.source()]),
        }
    }

    /// Reconstructs an event received off a wire, with an explicit
    /// recorded route (a fresh event's route is just `[source]`; a
    /// forwarded copy carries every dispatcher it traversed).
    ///
    /// # Panics
    ///
    /// Panics if `pattern_seqs` is empty, unsorted, or has duplicates,
    /// or if `route` is empty or does not start at the event's source.
    /// Byte-level validation belongs to the codec; this constructor
    /// only accepts structurally sound events.
    pub fn from_wire(id: EventId, pattern_seqs: Vec<(PatternId, u64)>, route: Vec<NodeId>) -> Self {
        assert!(!pattern_seqs.is_empty(), "event must match some pattern");
        assert!(
            pattern_seqs.windows(2).all(|w| w[0].0 < w[1].0),
            "pattern list must be sorted and distinct"
        );
        assert_eq!(
            route.first().copied(),
            Some(id.source()),
            "recorded route must start at the source"
        );
        Event {
            id,
            data: Arc::new(EventData { pattern_seqs }),
            route: Arc::new(route),
        }
    }

    /// The globally unique identifier.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The publishing dispatcher.
    pub fn source(&self) -> NodeId {
        self.id.source()
    }

    /// The patterns this event matches, sorted.
    pub fn patterns(&self) -> impl Iterator<Item = PatternId> + '_ {
        self.data.pattern_seqs.iter().map(|&(p, _)| p)
    }

    /// Pattern/sequence pairs carried in the identifier.
    pub fn pattern_seqs(&self) -> &[(PatternId, u64)] {
        &self.data.pattern_seqs
    }

    /// The sequence number associated with pattern `p`, if the event
    /// matches it.
    pub fn seq_for(&self, p: PatternId) -> Option<u64> {
        self.data
            .pattern_seqs
            .binary_search_by_key(&p, |&(q, _)| q)
            .ok()
            .map(|i| self.data.pattern_seqs[i].1)
    }

    /// `true` if the event content contains pattern `p`.
    pub fn matches(&self, p: PatternId) -> bool {
        self.seq_for(p).is_some()
    }

    /// `true` if the event matches *any* of the given (sorted or not)
    /// patterns.
    pub fn matches_any<I: IntoIterator<Item = PatternId>>(&self, patterns: I) -> bool {
        patterns.into_iter().any(|p| self.matches(p))
    }

    /// The route recorded so far (source first).
    pub fn route(&self) -> &[NodeId] {
        &self.route
    }

    /// Appends a traversed dispatcher to the recorded route (used by
    /// publisher-based pull). Copy-on-write: copies already in flight
    /// elsewhere keep their shorter route.
    pub fn record_hop(&mut self, node: NodeId) {
        Arc::make_mut(&mut self.route).push(node);
    }

    /// Approximate wire size of this event message, in bits, given the
    /// configured payload size. The paper assumes event and gossip
    /// messages have the same size; route recording adds
    /// [`ROUTE_HOP_BITS`] per recorded hop on top.
    pub fn wire_bits(&self, payload_bits: u64) -> u64 {
        payload_bits + ROUTE_HOP_BITS * self.route.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> Event {
        Event::new(
            EventId::new(NodeId::new(2), 9),
            vec![(PatternId::new(3), 1), (PatternId::new(10), 4)],
        )
    }

    #[test]
    fn id_accessors() {
        let e = event();
        assert_eq!(e.id().source(), NodeId::new(2));
        assert_eq!(e.id().seq(), 9);
        assert_eq!(e.source(), NodeId::new(2));
    }

    #[test]
    fn matching_is_containment() {
        let e = event();
        assert!(e.matches(PatternId::new(3)));
        assert!(e.matches(PatternId::new(10)));
        assert!(!e.matches(PatternId::new(4)));
        assert!(e.matches_any([PatternId::new(4), PatternId::new(10)]));
        assert!(!e.matches_any([PatternId::new(0)]));
    }

    #[test]
    fn per_pattern_sequences() {
        let e = event();
        assert_eq!(e.seq_for(PatternId::new(3)), Some(1));
        assert_eq!(e.seq_for(PatternId::new(10)), Some(4));
        assert_eq!(e.seq_for(PatternId::new(11)), None);
    }

    #[test]
    fn route_starts_at_source_and_records_hops() {
        let mut e = event();
        assert_eq!(e.route(), &[NodeId::new(2)]);
        e.record_hop(NodeId::new(5));
        e.record_hop(NodeId::new(7));
        assert_eq!(e.route(), &[NodeId::new(2), NodeId::new(5), NodeId::new(7)]);
    }

    #[test]
    fn clone_shares_content_and_route() {
        let e = event();
        let copy = e.clone();
        // A per-hop clone must be a refcount bump, not a deep copy.
        assert!(Arc::ptr_eq(&e.data, &copy.data));
        assert!(Arc::ptr_eq(&e.route, &copy.route));
    }

    #[test]
    fn record_hop_is_copy_on_write() {
        let e = event();
        let mut hopped = e.clone();
        hopped.record_hop(NodeId::new(5));
        // The content stays shared; only the route diverges.
        assert!(Arc::ptr_eq(&e.data, &hopped.data));
        assert!(!Arc::ptr_eq(&e.route, &hopped.route));
        assert_eq!(e.route(), &[NodeId::new(2)]);
        assert_eq!(hopped.route(), &[NodeId::new(2), NodeId::new(5)]);
    }

    #[test]
    fn record_hop_without_aliases_mutates_in_place() {
        let mut e = event();
        let before = Arc::as_ptr(&e.route);
        e.record_hop(NodeId::new(5));
        // Sole owner: no reallocation of the Arc itself.
        assert_eq!(before, Arc::as_ptr(&e.route));
    }

    #[test]
    fn wire_bits_grows_with_route() {
        let mut e = event();
        let base = e.wire_bits(1000);
        e.record_hop(NodeId::new(5));
        assert_eq!(e.wire_bits(1000), base + 32);
    }

    #[test]
    #[should_panic]
    fn unsorted_patterns_panic() {
        let _ = Event::new(
            EventId::new(NodeId::new(0), 0),
            vec![(PatternId::new(5), 0), (PatternId::new(3), 0)],
        );
    }

    #[test]
    #[should_panic]
    fn empty_patterns_panic() {
        let _ = Event::new(EventId::new(NodeId::new(0), 0), vec![]);
    }

    #[test]
    fn event_id_display() {
        assert_eq!(event().id().to_string(), "d2#9");
    }

    #[test]
    fn from_wire_reconstructs_forwarded_copies() {
        let mut original = event();
        original.record_hop(NodeId::new(5));
        let rebuilt = Event::from_wire(
            original.id(),
            original.pattern_seqs().to_vec(),
            original.route().to_vec(),
        );
        assert_eq!(rebuilt, original);
    }

    #[test]
    #[should_panic]
    fn from_wire_rejects_routes_not_starting_at_source() {
        let _ = Event::from_wire(
            EventId::new(NodeId::new(2), 9),
            vec![(PatternId::new(3), 1)],
            vec![NodeId::new(7)],
        );
    }

    #[test]
    fn wire_bits_uses_the_shared_hop_constant() {
        let e = event();
        assert_eq!(e.wire_bits(1000), 1000 + ROUTE_HOP_BITS);
    }
}
