//! # eps-pubsub — best-effort content-based publish-subscribe
//!
//! Substrate crate for the reproduction of *“Epidemic Algorithms for
//! Reliable Content-Based Publish-Subscribe: An Evaluation”* (Costa et
//! al., ICDCS 2004). Implements the Section II system model that the
//! epidemic recovery algorithms operate on:
//!
//! - [`PatternId`]/[`PatternSpace`] — the content model: Π patterns,
//!   events match ≤ 3 of them, matching is containment;
//! - [`Event`]/[`EventId`] — events with globally unique identifiers,
//!   per-(source, pattern) sequence numbers (for pull loss detection)
//!   and hop-by-hop route recording (for publisher-based pull);
//! - [`SubscriptionTable`]/[`Interface`] — subscription-forwarding
//!   state: pattern → interfaces, with events routed on reverse paths;
//! - [`EventCache`] — the β-bounded FIFO buffer of cached events;
//! - [`LossDetector`]/[`LossRecord`] — sequence-gap loss detection;
//! - [`ClientId`]/[`ClientRegistry`] — the client layer: per-broker
//!   end-user subscriptions aggregated into the routing-level filter by
//!   covering/merging, with refcounted retraction;
//! - [`Dispatcher`] — the protocol logic tying it all together, pure
//!   (message in → messages out) so it can be driven by the simulator
//!   or by unit tests directly;
//! - [`flood_subscriptions`] and friends — instant assembly of the
//!   stable subscription state the paper's workloads run on.
//!
//! # Examples
//!
//! ```
//! use eps_pubsub::{Dispatcher, DispatcherConfig, PatternId, PatternSpace};
//! use eps_pubsub::{flood_subscriptions, install_local_subscriptions};
//! use eps_overlay::Topology;
//! use eps_sim::RngFactory;
//!
//! let factory = RngFactory::new(7);
//! let topo = Topology::random_tree(10, 4, &mut factory.stream("topology"));
//! let space = PatternSpace::paper_default();
//! let mut subs_rng = factory.stream("subscriptions");
//! let subs: Vec<Vec<PatternId>> = (0..10)
//!     .map(|_| space.random_subscriptions(2, &mut subs_rng))
//!     .collect();
//! let mut dispatchers: Vec<Dispatcher> = topo
//!     .nodes()
//!     .map(|id| Dispatcher::new(id, DispatcherConfig::default()))
//!     .collect();
//! install_local_subscriptions(&mut dispatchers, &subs);
//! flood_subscriptions(&mut dispatchers, &topo);
//! // Every dispatcher now routes events towards all subscribers.
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod clients;
mod detector;
mod dispatcher;
mod event;
mod pattern;
mod setup;
pub mod summary;
mod table;

pub use cache::{EventCache, EvictionPolicy};
pub use clients::{ClientId, ClientRegistry};
pub use detector::{LossDetector, LossRecord};
pub use dispatcher::{
    Dispatcher, DispatcherConfig, EventReceipt, Forward, PubSubMessage, RouteBook,
};
pub use event::{Event, EventId, ROUTE_HOP_BITS};
pub use pattern::{PatternId, PatternSpace};
pub use setup::{
    flood_subscriptions, flood_subscriptions_direct, install_client_subscriptions,
    install_local_subscriptions, intended_recipients, rebuild_subscription_routes, DispatcherHost,
};
pub use summary::{CacheSummary, RangeDetail, RangeRef, RangeSummary, SummaryIndex};
pub use table::{Interface, SubscriptionTable};
