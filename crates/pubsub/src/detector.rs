//! Sequence-gap loss detection for the pull algorithms.
//!
//! Each event identifier carries, for every pattern it matches, a
//! sequence number incremented at the source per (source, pattern)
//! stream. A dispatcher subscribed to pattern `p` therefore receives —
//! in a loss-free world — the seq numbers `0, 1, 2, …` for every
//! (source, p) stream; a jump reveals exactly which events were lost
//! (paper, Section III-B).

use std::collections::HashMap;

use eps_overlay::NodeId;

use crate::event::Event;
use crate::pattern::PatternId;

/// Coordinates of one detected missing event: enough information to
/// request it from any dispatcher that may have cached it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LossRecord {
    /// Publisher of the missing event.
    pub source: NodeId,
    /// The pattern stream in which the gap was observed.
    pub pattern: PatternId,
    /// The missing per-(source, pattern) sequence number.
    pub seq: u64,
}

impl std::fmt::Display for LossRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}@{}", self.source, self.pattern, self.seq)
    }
}

/// Tracks the next expected per-(source, pattern) sequence number and
/// reports gaps.
///
/// # Examples
///
/// ```
/// use eps_pubsub::{Event, EventId, LossDetector, PatternId};
/// use eps_overlay::NodeId;
///
/// let mut det = LossDetector::new();
/// let src = NodeId::new(0);
/// let p = PatternId::new(1);
/// // First event for (src, p) arrives with seq 2: seqs 0 and 1 were lost.
/// let e = Event::new(EventId::new(src, 10), vec![(p, 2)]);
/// let losses = det.observe(&e, |q| q == p);
/// assert_eq!(losses.len(), 2);
/// assert_eq!(losses[0].seq, 0);
/// assert_eq!(losses[1].seq, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LossDetector {
    expected: HashMap<(NodeId, PatternId), u64>,
    detected_total: u64,
}

impl LossDetector {
    /// Creates a detector with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a received event. `is_relevant` says which patterns
    /// this dispatcher tracks — only patterns it is locally subscribed
    /// to, since those are the only streams it is guaranteed to see in
    /// full. Returns the newly detected losses, oldest first.
    ///
    /// Events arriving late (sequence below the expected value, e.g.
    /// recovered duplicates) produce no detections and do not regress
    /// the expectation.
    pub fn observe<F: Fn(PatternId) -> bool>(
        &mut self,
        event: &Event,
        is_relevant: F,
    ) -> Vec<LossRecord> {
        self.observe_with(event, is_relevant, |_| false)
    }

    /// Like [`LossDetector::observe`], but streams of a pattern for
    /// which `is_late` returns `true` are *baselined* on their first
    /// observation: the expectation starts at the observed sequence
    /// number instead of zero, reporting no losses. This is the
    /// correct semantics for subscriptions issued mid-run — the new
    /// subscriber never received (and was never owed) the stream's
    /// history.
    pub fn observe_with<F: Fn(PatternId) -> bool, L: Fn(PatternId) -> bool>(
        &mut self,
        event: &Event,
        is_relevant: F,
        is_late: L,
    ) -> Vec<LossRecord> {
        let mut losses = Vec::new();
        let source = event.source();
        for &(pattern, seq) in event.pattern_seqs() {
            if !is_relevant(pattern) {
                continue;
            }
            match self.expected.entry((source, pattern)) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    if is_late(pattern) {
                        slot.insert(seq + 1);
                        continue;
                    }
                    let slot = slot.insert(0);
                    for missing in 0..seq {
                        losses.push(LossRecord {
                            source,
                            pattern,
                            seq: missing,
                        });
                    }
                    *slot = seq + 1;
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let expected = slot.get_mut();
                    if seq >= *expected {
                        for missing in *expected..seq {
                            losses.push(LossRecord {
                                source,
                                pattern,
                                seq: missing,
                            });
                        }
                        *expected = seq + 1;
                    }
                }
            }
        }
        self.detected_total += losses.len() as u64;
        losses
    }

    /// Drops all expectations for `pattern` (all sources). Called when
    /// a local subscription is cancelled so that a later
    /// re-subscription does not inherit stale expectations and report
    /// the unsubscribed gap as losses.
    pub fn forget_pattern(&mut self, pattern: PatternId) {
        self.expected.retain(|&(_, p), _| p != pattern);
    }

    /// The next expected sequence number for a (source, pattern)
    /// stream; zero if nothing was ever received.
    pub fn expected(&self, source: NodeId, pattern: PatternId) -> u64 {
        self.expected.get(&(source, pattern)).copied().unwrap_or(0)
    }

    /// Total number of losses ever detected.
    pub fn detected_total(&self) -> u64 {
        self.detected_total
    }

    /// Number of (source, pattern) streams being tracked.
    pub fn stream_count(&self) -> usize {
        self.expected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn ev(source: u32, id_seq: u64, patterns: &[(u16, u64)]) -> Event {
        Event::new(
            EventId::new(NodeId::new(source), id_seq),
            patterns
                .iter()
                .map(|&(p, s)| (PatternId::new(p), s))
                .collect(),
        )
    }

    #[test]
    fn in_order_stream_detects_nothing() {
        let mut det = LossDetector::new();
        for seq in 0..10 {
            let losses = det.observe(&ev(0, seq, &[(1, seq)]), |_| true);
            assert!(losses.is_empty());
        }
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 10);
        assert_eq!(det.detected_total(), 0);
    }

    #[test]
    fn gap_detects_each_missing_seq() {
        let mut det = LossDetector::new();
        det.observe(&ev(0, 0, &[(1, 0)]), |_| true);
        let losses = det.observe(&ev(0, 4, &[(1, 4)]), |_| true);
        let seqs: Vec<u64> = losses.iter().map(|l| l.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(det.detected_total(), 3);
    }

    #[test]
    fn irrelevant_patterns_are_ignored() {
        let mut det = LossDetector::new();
        let relevant = PatternId::new(1);
        let losses = det.observe(&ev(0, 0, &[(1, 3), (2, 5)]), |p| p == relevant);
        assert_eq!(losses.len(), 3);
        assert!(losses.iter().all(|l| l.pattern == relevant));
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(2)), 0);
    }

    #[test]
    fn late_arrivals_do_not_regress() {
        let mut det = LossDetector::new();
        det.observe(&ev(0, 5, &[(1, 5)]), |_| true);
        let exp = det.expected(NodeId::new(0), PatternId::new(1));
        let losses = det.observe(&ev(0, 2, &[(1, 2)]), |_| true);
        assert!(losses.is_empty());
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), exp);
    }

    #[test]
    fn streams_are_per_source_and_pattern() {
        let mut det = LossDetector::new();
        det.observe(&ev(0, 0, &[(1, 0)]), |_| true);
        det.observe(&ev(7, 0, &[(1, 2)]), |_| true);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 1);
        assert_eq!(det.expected(NodeId::new(7), PatternId::new(1)), 3);
        assert_eq!(det.stream_count(), 2);
    }

    #[test]
    fn multi_pattern_event_advances_all_relevant_streams() {
        let mut det = LossDetector::new();
        let losses = det.observe(&ev(0, 0, &[(1, 1), (2, 0)]), |_| true);
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].pattern, PatternId::new(1));
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 2);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(2)), 1);
    }
}
