//! Sequence-gap loss detection for the pull algorithms.
//!
//! Each event identifier carries, for every pattern it matches, a
//! sequence number incremented at the source per (source, pattern)
//! stream. A dispatcher subscribed to pattern `p` therefore receives —
//! in a loss-free world — the seq numbers `0, 1, 2, …` for every
//! (source, p) stream; a jump reveals exactly which events were lost
//! (paper, Section III-B).
//!
//! # Dense layout
//!
//! Expectations live in per-source dense rows indexed by
//! [`PatternId::index`], not a `HashMap<(NodeId, PatternId), u64>`:
//! observing an event costs one source-slot lookup plus an array index
//! per pattern. A cell value of `0` means "never received"; occupied
//! cells store the next expected sequence number, which is always
//! `seq + 1 ≥ 1`, so the sentinel never collides with real state and
//! [`LossDetector::expected`] keeps its "zero if nothing received"
//! contract for free.

use std::collections::HashMap;

use eps_overlay::NodeId;

use crate::event::Event;
use crate::pattern::{PatternId, DENSE_UNIVERSE_MAX};

/// Coordinates of one detected missing event: enough information to
/// request it from any dispatcher that may have cached it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LossRecord {
    /// Publisher of the missing event.
    pub source: NodeId,
    /// The pattern stream in which the gap was observed.
    pub pattern: PatternId,
    /// The missing per-(source, pattern) sequence number.
    pub seq: u64,
}

impl std::fmt::Display for LossRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}@{}", self.source, self.pattern, self.seq)
    }
}

/// Tracks the next expected per-(source, pattern) sequence number and
/// reports gaps.
///
/// # Examples
///
/// ```
/// use eps_pubsub::{Event, EventId, LossDetector, PatternId};
/// use eps_overlay::NodeId;
///
/// let mut det = LossDetector::new();
/// let src = NodeId::new(0);
/// let p = PatternId::new(1);
/// // First event for (src, p) arrives with seq 2: seqs 0 and 1 were lost.
/// let e = Event::new(EventId::new(src, 10), vec![(p, 2)]);
/// let losses = det.observe(&e, |q| q == p);
/// assert_eq!(losses.len(), 2);
/// assert_eq!(losses[0].seq, 0);
/// assert_eq!(losses[1].seq, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LossDetector {
    /// Initial row width in patterns (the universe size hint); rows
    /// still grow past it if a larger pattern index is observed.
    width: usize,
    /// Source slot → per-pattern expectation row. A cell holding `0`
    /// (dense) or absent (sparse) = stream never received; otherwise
    /// the next expected sequence number (always ≥ 1, see the module
    /// docs).
    rows: Vec<Row>,
    /// Source → row slot. Lookup-only (never iterated), so the
    /// HashMap's arbitrary ordering can't leak into any output.
    source_slots: HashMap<NodeId, usize>,
    /// Number of occupied cells across all rows (`stream_count`).
    streams: usize,
    detected_total: u64,
}

/// One source's expectation row.
///
/// Dense rows (Π cells up front) are optimal at the paper's Π = 70,
/// but at large universes a dispatcher only tracks the streams of its
/// locally subscribed patterns — a handful out of Π — so rows past
/// [`DENSE_UNIVERSE_MAX`] store only occupied cells, sorted by pattern
/// index. Keyed lookups only — never iterated — so the layout cannot
/// change any observable output.
#[derive(Clone, Debug)]
enum Row {
    Dense(Vec<u64>),
    Sparse(Vec<(u16, u64)>),
}

impl Row {
    /// The cell value; `0` means "stream never received".
    fn get(&self, pattern: PatternId) -> u64 {
        match self {
            Row::Dense(cells) => cells.get(pattern.index()).copied().unwrap_or(0),
            Row::Sparse(cells) => cells
                .binary_search_by_key(&pattern.value(), |&(p, _)| p)
                .map(|i| cells[i].1)
                .unwrap_or(0),
        }
    }

    /// Stores a non-zero expectation.
    fn set(&mut self, pattern: PatternId, value: u64) {
        match self {
            Row::Dense(cells) => {
                let idx = pattern.index();
                if idx >= cells.len() {
                    cells.resize(idx + 1, 0);
                }
                cells[idx] = value;
            }
            Row::Sparse(cells) => match cells.binary_search_by_key(&pattern.value(), |&(p, _)| p) {
                Ok(i) => cells[i].1 = value,
                Err(i) => cells.insert(i, (pattern.value(), value)),
            },
        }
    }

    /// Clears the cell; returns `true` if it held an expectation.
    fn forget(&mut self, pattern: PatternId) -> bool {
        match self {
            Row::Dense(cells) => match cells.get_mut(pattern.index()) {
                Some(cell) if *cell != 0 => {
                    *cell = 0;
                    true
                }
                _ => false,
            },
            Row::Sparse(cells) => match cells.binary_search_by_key(&pattern.value(), |&(p, _)| p) {
                Ok(i) => {
                    cells.remove(i);
                    true
                }
                Err(_) => false,
            },
        }
    }
}

impl LossDetector {
    /// Creates a detector with no history whose rows grow on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector pre-sizing each source's expectation row for
    /// `universe` patterns (from [`crate::PatternSpace::universe`]).
    /// Purely an allocation hint — behavior is identical to
    /// [`LossDetector::new`].
    pub fn with_universe(universe: usize) -> Self {
        LossDetector {
            width: universe,
            ..Self::default()
        }
    }

    /// The row slot for `source`, registering it on first use.
    fn slot_for(&mut self, source: NodeId) -> usize {
        let rows = &mut self.rows;
        let width = self.width;
        *self.source_slots.entry(source).or_insert_with(|| {
            rows.push(if width > DENSE_UNIVERSE_MAX {
                Row::Sparse(Vec::new())
            } else {
                Row::Dense(vec![0; width])
            });
            rows.len() - 1
        })
    }

    /// Observes a received event. `is_relevant` says which patterns
    /// this dispatcher tracks — only patterns it is locally subscribed
    /// to, since those are the only streams it is guaranteed to see in
    /// full. Returns the newly detected losses, oldest first.
    ///
    /// Events arriving late (sequence below the expected value, e.g.
    /// recovered duplicates) produce no detections and do not regress
    /// the expectation.
    pub fn observe<F: Fn(PatternId) -> bool>(
        &mut self,
        event: &Event,
        is_relevant: F,
    ) -> Vec<LossRecord> {
        self.observe_with(event, is_relevant, |_| false)
    }

    /// Like [`LossDetector::observe`], but streams of a pattern for
    /// which `is_late` returns `true` are *baselined* on their first
    /// observation: the expectation starts at the observed sequence
    /// number instead of zero, reporting no losses. This is the
    /// correct semantics for subscriptions issued mid-run — the new
    /// subscriber never received (and was never owed) the stream's
    /// history.
    pub fn observe_with<F: Fn(PatternId) -> bool, L: Fn(PatternId) -> bool>(
        &mut self,
        event: &Event,
        is_relevant: F,
        is_late: L,
    ) -> Vec<LossRecord> {
        let mut losses = Vec::new();
        let source = event.source();
        // The source's row slot, resolved lazily so an event with no
        // relevant patterns registers nothing (as before).
        let mut slot: Option<usize> = None;
        for &(pattern, seq) in event.pattern_seqs() {
            if !is_relevant(pattern) {
                continue;
            }
            let s = match slot {
                Some(s) => s,
                None => {
                    let s = self.slot_for(source);
                    slot = Some(s);
                    s
                }
            };
            let row = &mut self.rows[s];
            let expected = row.get(pattern);
            if expected == 0 {
                // Stream never received before.
                self.streams += 1;
                if is_late(pattern) {
                    row.set(pattern, seq + 1);
                    continue;
                }
                for missing in 0..seq {
                    losses.push(LossRecord {
                        source,
                        pattern,
                        seq: missing,
                    });
                }
                row.set(pattern, seq + 1);
            } else if seq >= expected {
                for missing in expected..seq {
                    losses.push(LossRecord {
                        source,
                        pattern,
                        seq: missing,
                    });
                }
                row.set(pattern, seq + 1);
            }
        }
        self.detected_total += losses.len() as u64;
        losses
    }

    /// Drops all expectations for `pattern` (all sources). Called when
    /// a local subscription is cancelled so that a later
    /// re-subscription does not inherit stale expectations and report
    /// the unsubscribed gap as losses.
    pub fn forget_pattern(&mut self, pattern: PatternId) {
        for row in &mut self.rows {
            if row.forget(pattern) {
                self.streams -= 1;
            }
        }
    }

    /// The next expected sequence number for a (source, pattern)
    /// stream; zero if nothing was ever received.
    pub fn expected(&self, source: NodeId, pattern: PatternId) -> u64 {
        self.source_slots
            .get(&source)
            .map(|&s| self.rows[s].get(pattern))
            .unwrap_or(0)
    }

    /// Total number of losses ever detected.
    pub fn detected_total(&self) -> u64 {
        self.detected_total
    }

    /// Number of (source, pattern) streams being tracked.
    pub fn stream_count(&self) -> usize {
        self.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn ev(source: u32, id_seq: u64, patterns: &[(u16, u64)]) -> Event {
        Event::new(
            EventId::new(NodeId::new(source), id_seq),
            patterns
                .iter()
                .map(|&(p, s)| (PatternId::new(p), s))
                .collect(),
        )
    }

    #[test]
    fn in_order_stream_detects_nothing() {
        let mut det = LossDetector::new();
        for seq in 0..10 {
            let losses = det.observe(&ev(0, seq, &[(1, seq)]), |_| true);
            assert!(losses.is_empty());
        }
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 10);
        assert_eq!(det.detected_total(), 0);
    }

    #[test]
    fn gap_detects_each_missing_seq() {
        let mut det = LossDetector::new();
        det.observe(&ev(0, 0, &[(1, 0)]), |_| true);
        let losses = det.observe(&ev(0, 4, &[(1, 4)]), |_| true);
        let seqs: Vec<u64> = losses.iter().map(|l| l.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(det.detected_total(), 3);
    }

    #[test]
    fn irrelevant_patterns_are_ignored() {
        let mut det = LossDetector::new();
        let relevant = PatternId::new(1);
        let losses = det.observe(&ev(0, 0, &[(1, 3), (2, 5)]), |p| p == relevant);
        assert_eq!(losses.len(), 3);
        assert!(losses.iter().all(|l| l.pattern == relevant));
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(2)), 0);
    }

    #[test]
    fn late_arrivals_do_not_regress() {
        let mut det = LossDetector::new();
        det.observe(&ev(0, 5, &[(1, 5)]), |_| true);
        let exp = det.expected(NodeId::new(0), PatternId::new(1));
        let losses = det.observe(&ev(0, 2, &[(1, 2)]), |_| true);
        assert!(losses.is_empty());
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), exp);
    }

    #[test]
    fn streams_are_per_source_and_pattern() {
        let mut det = LossDetector::new();
        det.observe(&ev(0, 0, &[(1, 0)]), |_| true);
        det.observe(&ev(7, 0, &[(1, 2)]), |_| true);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 1);
        assert_eq!(det.expected(NodeId::new(7), PatternId::new(1)), 3);
        assert_eq!(det.stream_count(), 2);
    }

    #[test]
    fn multi_pattern_event_advances_all_relevant_streams() {
        let mut det = LossDetector::new();
        let losses = det.observe(&ev(0, 0, &[(1, 1), (2, 0)]), |_| true);
        assert_eq!(losses.len(), 1);
        assert_eq!(losses[0].pattern, PatternId::new(1));
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 2);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(2)), 1);
    }

    #[test]
    fn forget_pattern_resets_streams_and_count() {
        let mut det = LossDetector::with_universe(8);
        det.observe(&ev(0, 0, &[(1, 0), (2, 0)]), |_| true);
        det.observe(&ev(7, 0, &[(1, 4)]), |_| true);
        assert_eq!(det.stream_count(), 3);
        det.forget_pattern(PatternId::new(1));
        assert_eq!(det.stream_count(), 1);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(1)), 0);
        assert_eq!(det.expected(NodeId::new(7), PatternId::new(1)), 0);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(2)), 1);
        // A fresh observation re-baselines from scratch.
        let losses = det.observe(&ev(0, 1, &[(1, 3)]), |_| true);
        assert_eq!(losses.len(), 3);
    }

    #[test]
    fn sparse_rows_match_dense_behavior() {
        // The same observation sequence against a dense-width and a
        // sparse-width detector must agree on every observable,
        // including late baselining and pattern forgetting.
        let mut dense = LossDetector::with_universe(70);
        let mut sparse = LossDetector::with_universe(DENSE_UNIVERSE_MAX + 1);
        let steps: Vec<Event> = vec![
            ev(0, 0, &[(1, 2), (3, 0)]),
            ev(7, 1, &[(1, 4)]),
            ev(0, 2, &[(1, 1)]), // late arrival
            ev(0, 3, &[(3, 5), (9, 0)]),
        ];
        for (i, e) in steps.iter().enumerate() {
            let late = |p: PatternId| p == PatternId::new(9);
            let a = dense.observe_with(e, |_| true, late);
            let b = sparse.observe_with(e, |_| true, late);
            assert_eq!(a, b, "step {i}");
        }
        dense.forget_pattern(PatternId::new(1));
        sparse.forget_pattern(PatternId::new(1));
        assert_eq!(dense.stream_count(), sparse.stream_count());
        assert_eq!(dense.detected_total(), sparse.detected_total());
        for (src, p) in [(0u32, 1u16), (0, 3), (0, 9), (7, 1)] {
            assert_eq!(
                dense.expected(NodeId::new(src), PatternId::new(p)),
                sparse.expected(NodeId::new(src), PatternId::new(p)),
                "expected({src}, {p})"
            );
        }
    }

    #[test]
    fn rows_grow_past_the_universe_hint() {
        let mut det = LossDetector::with_universe(2);
        let losses = det.observe(&ev(0, 0, &[(500, 1)]), |_| true);
        assert_eq!(losses.len(), 1);
        assert_eq!(det.expected(NodeId::new(0), PatternId::new(500)), 2);
    }
}
