//! Seeded model-equivalence test of the client layer, runnable in the
//! offline workspace (the proptest twin with shrinking lives in
//! `extras/tests/client_aggregation_proptests.rs`, which needs
//! registry access). A long random sequence of client subscribes,
//! unsubscribes, and deliveries drives the flat sorted
//! [`ClientRegistry`] and a naive per-client reference model, and
//! every observable must agree op-for-op:
//!
//! - covering never loses a delivery — fan-out equals the clients
//!   whose own subscription sets match the event;
//! - refcounted retraction never strands routing state — a dispatcher
//!   driven through `client_subscribe`/`client_unsubscribe` holds
//!   exactly the aggregate in its table's local interface.

use std::collections::{BTreeMap, BTreeSet};

use eps_overlay::NodeId;
use eps_pubsub::{
    ClientId, ClientRegistry, Dispatcher, DispatcherConfig, Event, EventId, PatternId,
};
use eps_sim::Rng;

const CLIENTS: u64 = 8;
const PATTERNS: u64 = 24;

/// The reference model: each client's own subscription set. The
/// aggregate is derived on demand, never cached.
#[derive(Default)]
struct Model {
    clients: BTreeMap<ClientId, BTreeSet<PatternId>>,
}

impl Model {
    fn subscribe(&mut self, client: ClientId, pattern: PatternId) -> bool {
        let covered = self.covers(pattern);
        self.clients.entry(client).or_default().insert(pattern) && !covered
    }

    fn unsubscribe(&mut self, client: ClientId, pattern: PatternId) -> bool {
        let removed = self
            .clients
            .get_mut(&client)
            .is_some_and(|set| set.remove(&pattern));
        removed && !self.covers(pattern)
    }

    fn covers(&self, pattern: PatternId) -> bool {
        self.clients.values().any(|set| set.contains(&pattern))
    }

    fn refcount(&self, pattern: PatternId) -> usize {
        self.clients
            .values()
            .filter(|set| set.contains(&pattern))
            .count()
    }

    fn aggregate(&self) -> Vec<PatternId> {
        self.clients
            .values()
            .flatten()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    fn len(&self) -> usize {
        self.clients.values().map(BTreeSet::len).sum()
    }

    fn matching_clients(&self, event: &Event) -> Vec<ClientId> {
        self.clients
            .iter()
            .filter(|(_, set)| event.patterns().any(|p| set.contains(&p)))
            .map(|(&c, _)| c)
            .collect()
    }
}

fn random_event(rng: &mut Rng, seq: u64) -> Event {
    let mut patterns: Vec<u16> = (0..1 + rng.random_below(3))
        .map(|_| rng.random_below(PATTERNS) as u16)
        .collect();
    patterns.sort_unstable();
    patterns.dedup();
    Event::new(
        EventId::new(NodeId::new(0), seq),
        patterns
            .into_iter()
            .map(|p| (PatternId::new(p), seq))
            .collect(),
    )
}

#[test]
fn registry_and_dispatcher_match_per_client_reference_model() {
    for seed in [3, 17, 4242] {
        let mut rng = Rng::from_seed(seed);
        let mut registry = ClientRegistry::new();
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut model = Model::default();
        for step in 0..2_000u64 {
            let client = ClientId::new(rng.random_below(CLIENTS) as u32);
            let pattern = PatternId::new(rng.random_below(PATTERNS) as u16);
            match rng.random_below(6) {
                0..=2 => {
                    let grew = model.subscribe(client, pattern);
                    assert_eq!(
                        registry.subscribe(client, pattern),
                        grew,
                        "seed {seed} step {step}: aggregate-grew transition disagrees"
                    );
                    // Covered subscriptions must propagate nothing.
                    let forwards = node.client_subscribe(client, pattern, &[]);
                    if !grew {
                        assert!(
                            forwards.is_empty(),
                            "seed {seed} step {step}: covered subscription propagated"
                        );
                    }
                }
                3..=4 => {
                    let shrank = model.unsubscribe(client, pattern);
                    assert_eq!(
                        registry.unsubscribe(client, pattern),
                        shrank,
                        "seed {seed} step {step}: aggregate-shrank transition disagrees"
                    );
                    node.client_unsubscribe(client, pattern, &[]);
                }
                _ => {
                    let event = random_event(&mut rng, step);
                    let mut out = Vec::new();
                    registry.matching_clients_into(&event, &mut out);
                    assert_eq!(
                        out,
                        model.matching_clients(&event),
                        "seed {seed} step {step}: covering changed delivery semantics"
                    );
                }
            }
            assert_eq!(registry.len(), model.len(), "seed {seed} step {step}");
            let aggregate: Vec<PatternId> = registry.aggregate_patterns().collect();
            assert_eq!(
                aggregate,
                model.aggregate(),
                "seed {seed} step {step}: aggregate filter drifted"
            );
            // The dispatcher's routing state is exactly the aggregate:
            // nothing strands after the last local client drops a
            // pattern, nothing retracts while a holder remains.
            let local: Vec<PatternId> = node.table().local_patterns().collect();
            assert_eq!(
                local,
                model.aggregate(),
                "seed {seed} step {step}: routing state drifted from the aggregate"
            );
        }
        // Exercised both regimes: the run must have covered and
        // refcounted, not just mirrored single subscriptions.
        assert!(registry.len() > registry.aggregate_len());
        for p in 0..PATTERNS {
            let pattern = PatternId::new(p as u16);
            assert_eq!(registry.covers(pattern), model.covers(pattern));
            assert_eq!(registry.refcount(pattern), model.refcount(pattern));
        }
    }
}
