//! Property-based tests of summary reconciliation: two randomly
//! diverged caches, driven through real engines in symmetric rounds,
//! checked against a `BTreeSet` set-difference reference.
//!
//! The offline twin (`crates/gossip/tests/summary_model.rs`) runs the
//! same pump over pinned seeds inside the no-network workspace; this
//! file explores the input space with proptest where the registry is
//! reachable.
//!
//! Properties:
//!
//! 1. For every steering a summary digest composes with (pattern,
//!    mux-over-source-and-pattern), two diverged caches converge to
//!    exactly their union within the predicted round bound and go
//!    quiet.
//! 2. Under eviction churn mid-reconciliation, exact equality is out
//!    of reach by design (the `has_seen` filter never refetches an
//!    evicted id), but no *unseen* deficit survives: every id live in
//!    one cache ends up seen by the other.
//! 3. Random steering is inert for summary digests — composition is
//!    safe, never a panic.

use std::collections::BTreeSet;

use eps_gossip::{
    GossipAction, GossipConfig, GossipEngine, MuxSteering, PatternSteering, RandomSteering,
    RecoveryAlgorithm, SourceSteering, SummaryDigestPolicy,
};
use eps_overlay::NodeId;
use eps_pubsub::summary::LEVEL_COUNT;
use eps_pubsub::{Dispatcher, DispatcherConfig, Event, EventId, PatternId, RangeRef};
use eps_sim::Rng;
use proptest::prelude::*;

/// Every event comes from one publisher stream, so per-(source,
/// pattern) sequence numbers stay monotonic per node.
const SOURCE: u32 = 7;

fn pattern() -> PatternId {
    PatternId::new(1)
}

/// One side of the reconciliation: a dispatcher plus its boxed
/// recovery engine, exactly the pairing the harness runs.
struct Peer {
    node: Dispatcher,
    algo: Box<dyn RecoveryAlgorithm>,
}

/// A dispatcher subscribed to the test pattern both locally and on
/// behalf of its peer, so pattern steering always has a route.
fn peer(id: u32, peer_id: u32, capacity: usize, algo: Box<dyn RecoveryAlgorithm>) -> Peer {
    let mut node = Dispatcher::new(
        NodeId::new(id),
        DispatcherConfig {
            cache_capacity: capacity,
            summary_index: true,
            ..DispatcherConfig::default()
        },
    );
    node.subscribe_local(pattern(), &[]);
    node.on_subscribe(pattern(), NodeId::new(peer_id), &[]);
    Peer { node, algo }
}

/// The engine composition under test: a summary digest (push or pull
/// deficit direction) over pattern steering, optionally behind the
/// combined-pull style mux (whose source arm has no candidates for a
/// summary digest and falls back to the pattern arm every round).
fn summary_engine(pull: bool, mux: bool) -> Box<dyn RecoveryAlgorithm> {
    let config = GossipConfig::default();
    let digest = if pull {
        SummaryDigestPolicy::pull(&config)
    } else {
        SummaryDigestPolicy::push(&config)
    };
    if mux {
        Box::new(GossipEngine::new(
            "summary-mux",
            config,
            digest,
            MuxSteering::new(SourceSteering::default(), PatternSteering::default()),
        ))
    } else {
        Box::new(GossipEngine::new(
            "summary",
            config,
            digest,
            PatternSteering::default(),
        ))
    }
}

/// Feeds `seqs` (ascending) as tree deliveries; what one peer receives
/// and the other does not is the divergence under reconciliation.
fn feed(node: &mut Dispatcher, seqs: impl IntoIterator<Item = u64>) {
    for seq in seqs {
        let event = Event::new(
            EventId::new(NodeId::new(SOURCE), seq),
            vec![(pattern(), seq)],
        );
        node.on_event(event, Some(NodeId::new(99)));
    }
}

/// The cache's resident id set for the test pattern, read through the
/// summary index (which the eviction path must keep in sync).
fn live_ids(node: &Dispatcher) -> BTreeSet<EventId> {
    node.cache()
        .summary_index()
        .ids_in(pattern(), RangeRef::ROOT)
        .into_iter()
        .collect()
}

/// Applies `actions` (emitted by `src`'s engine, all addressed to
/// `dst` in a two-node world) and recurses into the reactions they
/// trigger. Returns the number of reconciliation actions that flowed —
/// digest forwards are free-running and do not count, so a zero return
/// means the round found no divergence to work on.
fn apply(src: &mut Peer, dst: &mut Peer, actions: Vec<GossipAction>, rng: &mut Rng) -> usize {
    let mut work = 0;
    for action in actions {
        match action {
            GossipAction::Forward { to, msg } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                let from = src.node.id();
                let reactions = dst.algo.on_gossip(&dst.node, from, msg, &[from], rng);
                work += apply(dst, src, reactions, rng);
            }
            GossipAction::RequestDetail {
                to,
                pattern: p,
                ranges,
            } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                dst.algo.on_range_request(src.node.id(), p, &ranges);
                work += 1;
            }
            GossipAction::Request { to, ids } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                let from = src.node.id();
                let replies = dst.algo.on_request(&dst.node, from, &ids);
                work += 1 + apply(dst, src, replies, rng);
            }
            GossipAction::Reply { to, events } => {
                assert_eq!(to, dst.node.id(), "two-node world");
                for event in events {
                    dst.node.on_recovered_event(event.clone());
                    dst.algo.on_event_received(&event);
                }
                work += 1;
            }
        }
    }
    work
}

/// The predicted convergence bound for symmetric two-node summary
/// reconciliation: each direction surfaces the root mismatch and
/// narrows it by one tree level per round (`2 * LEVEL_COUNT`), moves
/// `delta` differing ids through `digest_max`-bounded digest entries
/// (each expansion consumes entry budget, hence the `digest_max - 1`
/// denominator), and drains its refinement queue with a little slack.
fn round_bound(delta: usize, digest_max: usize) -> usize {
    2 * LEVEL_COUNT + 2 * (LEVEL_COUNT * delta / (digest_max - 1) + 1) + 10
}

/// Runs symmetric rounds (A gossips to B, then B to A) until a round
/// moves nothing and the caches agree; returns the rounds used, or
/// `None` if `max_rounds` was not enough.
fn reconcile(a: &mut Peer, b: &mut Peer, rng: &mut Rng, max_rounds: usize) -> Option<usize> {
    for round in 1..=max_rounds {
        let opening = a.algo.on_round(&a.node, &[b.node.id()], rng);
        let mut work = apply(a, b, opening, rng);
        let reply_round = b.algo.on_round(&b.node, &[a.node.id()], rng);
        work += apply(b, a, reply_round, rng);
        if work == 0 && live_ids(&a.node) == live_ids(&b.node) {
            return Some(round);
        }
    }
    None
}

/// Seqs selected by a proptest-drawn membership mask.
fn selected(mask: &[bool]) -> Vec<u64> {
    mask.iter()
        .enumerate()
        .filter(|(_, &keep)| keep)
        .map(|(seq, _)| seq as u64)
        .collect()
}

proptest! {
    /// Two diverged caches converge to exactly their union — the
    /// BTreeSet set-difference reference — within the predicted round
    /// bound, for every steering composition, in both deficit
    /// directions.
    #[test]
    fn diverged_caches_converge_to_union(
        seed in any::<u64>(),
        in_a in prop::collection::vec(any::<bool>(), 200),
        in_b in prop::collection::vec(any::<bool>(), 200),
        pull in any::<bool>(),
        mux in any::<bool>(),
    ) {
        let in_a = selected(&in_a);
        let in_b = selected(&in_b);
        let sa: BTreeSet<u64> = in_a.iter().copied().collect();
        let sb: BTreeSet<u64> = in_b.iter().copied().collect();
        let union: BTreeSet<EventId> = sa
            .union(&sb)
            .map(|&seq| EventId::new(NodeId::new(SOURCE), seq))
            .collect();
        let delta = sa.symmetric_difference(&sb).count();

        let mut a = peer(0, 1, 1500, summary_engine(pull, mux));
        let mut b = peer(1, 0, 1500, summary_engine(pull, mux));
        feed(&mut a.node, in_a);
        feed(&mut b.node, in_b);

        let bound = round_bound(delta, GossipConfig::default().digest_max);
        let mut rng = Rng::from_seed(seed);
        let rounds = reconcile(&mut a, &mut b, &mut rng, bound);
        prop_assert!(rounds.is_some(), "no convergence within {} rounds", bound);
        prop_assert_eq!(live_ids(&a.node), union.clone());
        prop_assert_eq!(live_ids(&b.node), union);
        prop_assert_eq!(
            a.node.cache().summary_index().root(pattern()),
            b.node.cache().summary_index().root(pattern())
        );
    }

    /// Eviction churn mid-reconciliation: fresh publications land on
    /// both sides of an at-capacity cache while the protocol runs.
    /// `has_seen` never refetches an evicted id, so exact equality is
    /// unreachable by design; what must hold is that no *unseen*
    /// deficit survives — every id still live on one side has been
    /// seen by the other. (Pull mode keeps re-serving already-seen
    /// surplus, which the receiver deduplicates, so quiescence is not
    /// asserted here — only coverage at the bound.)
    #[test]
    fn eviction_churn_leaves_no_unseen_deficits(
        seed in any::<u64>(),
        in_a in prop::collection::vec(any::<bool>(), 96),
        in_b in prop::collection::vec(any::<bool>(), 96),
        fresh_a in 1u64..24,
        fresh_b in 1u64..24,
        pull in any::<bool>(),
    ) {
        const CAPACITY: usize = 64;
        let mut a = peer(0, 1, CAPACITY, summary_engine(pull, false));
        let mut b = peer(1, 0, CAPACITY, summary_engine(pull, false));
        feed(&mut a.node, selected(&in_a));
        feed(&mut b.node, selected(&in_b));

        let mut rng = Rng::from_seed(seed);
        // A few rounds in, new events land on each side (fresh
        // streams, so they are pure divergence).
        reconcile(&mut a, &mut b, &mut rng, 4);
        feed(&mut a.node, 1_000..1_000 + fresh_a);
        feed(&mut b.node, 2_000..2_000 + fresh_b);

        let bound = round_bound(128, GossipConfig::default().digest_max);
        for _ in 0..bound {
            let opening = a.algo.on_round(&a.node, &[b.node.id()], &mut rng);
            apply(&mut a, &mut b, opening, &mut rng);
            let reply_round = b.algo.on_round(&b.node, &[a.node.id()], &mut rng);
            apply(&mut b, &mut a, reply_round, &mut rng);
        }

        for &id in &live_ids(&a.node) {
            prop_assert!(b.node.has_seen(id), "unseen deficit at b: {:?}", id);
        }
        for &id in &live_ids(&b.node) {
            prop_assert!(a.node.has_seen(id), "unseen deficit at a: {:?}", id);
        }
    }

    /// Summary digests are pattern-labelled only: random steering's
    /// build_any finds nothing to send, so the composition is a safe
    /// no-op for arbitrary cache contents — never a panic.
    #[test]
    fn random_steering_is_inert_for_summary(
        seed in any::<u64>(),
        events in prop::collection::vec(any::<bool>(), 50),
        pull in any::<bool>(),
    ) {
        let config = GossipConfig::default();
        let digest = if pull {
            SummaryDigestPolicy::pull(&config)
        } else {
            SummaryDigestPolicy::push(&config)
        };
        let mut a = peer(
            0,
            1,
            1500,
            Box::new(GossipEngine::new("summary-random", config, digest, RandomSteering)),
        );
        feed(&mut a.node, selected(&events));
        let mut rng = Rng::from_seed(seed);
        for _ in 0..5 {
            let actions = a.algo.on_round(&a.node, &[NodeId::new(1)], &mut rng);
            prop_assert!(actions.is_empty(), "random steering sent a summary digest");
        }
        prop_assert_eq!(a.algo.outstanding_losses(), 0);
    }
}
