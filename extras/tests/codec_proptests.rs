//! Property-based tests of the wire codec: the encode/decode pair is
//! a bijection between (fitted) envelopes and their canonical byte
//! frames, for arbitrary message contents — empty digests, max-degree
//! routes, multi-pattern events, the lot.

use std::sync::Arc;

use eps_gossip::{codec, CodecError, Envelope, GossipMessage};
use eps_overlay::NodeId;
use eps_pubsub::{Event, EventId, LossRecord, PatternId, PubSubMessage};
use proptest::prelude::*;

/// The widest overlay degree the scenarios use; route vectors are
/// generated up to this length (plus empty).
const MAX_DEGREE: usize = 16;

/// Byte-aligned payload sizes (the codec rejects anything else).
fn payload_bits() -> impl Strategy<Value = u64> {
    (64u64..512).prop_map(|bytes| bytes * 8)
}

fn event_id() -> impl Strategy<Value = EventId> {
    (0u32..64, 0u64..100_000).prop_map(|(src, seq)| EventId::new(NodeId::new(src), seq))
}

fn loss_record() -> impl Strategy<Value = LossRecord> {
    (0u32..64, 0u16..70, 0u64..100_000).prop_map(|(source, pattern, seq)| LossRecord {
        source: NodeId::new(source),
        pattern: PatternId::new(pattern),
        seq,
    })
}

fn event() -> impl Strategy<Value = Event> {
    (
        event_id(),
        prop::collection::vec((0u16..70, 0u64..100_000), 1..4),
        prop::collection::vec(0u32..64, 0..=MAX_DEGREE),
    )
        .prop_map(|(id, pattern_seqs, route)| {
            let mut event = Event::new(
                id,
                pattern_seqs
                    .into_iter()
                    .map(|(p, s)| (PatternId::new(p), s))
                    .collect(),
            );
            for hop in route {
                event.record_hop(NodeId::new(hop));
            }
            event
        })
}

fn envelope() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (0u16..70).prop_map(|p| Envelope::PubSub(PubSubMessage::Subscribe(PatternId::new(p)))),
        (0u16..70).prop_map(|p| Envelope::PubSub(PubSubMessage::Unsubscribe(PatternId::new(p)))),
        event().prop_map(|e| Envelope::PubSub(PubSubMessage::Event(e))),
        // Digest sizes start at zero on purpose: empty digests must
        // frame and round-trip like any other body.
        (0u32..64, 0u16..70, prop::collection::vec(event_id(), 0..40)).prop_map(
            |(gossiper, pattern, ids)| {
                Envelope::Gossip(GossipMessage::PushDigest {
                    gossiper: NodeId::new(gossiper),
                    pattern: PatternId::new(pattern),
                    ids: Arc::new(ids),
                })
            }
        ),
        (0u32..64, 0u16..70, prop::collection::vec(loss_record(), 0..40)).prop_map(
            |(gossiper, pattern, lost)| {
                Envelope::Gossip(GossipMessage::PullDigest {
                    gossiper: NodeId::new(gossiper),
                    pattern: PatternId::new(pattern),
                    lost,
                })
            }
        ),
        (
            0u32..64,
            0u32..64,
            prop::collection::vec(loss_record(), 0..40),
            prop::collection::vec(0u32..64, 0..=MAX_DEGREE),
        )
            .prop_map(|(gossiper, source, lost, route)| {
                Envelope::Gossip(GossipMessage::SourcePull {
                    gossiper: NodeId::new(gossiper),
                    source: NodeId::new(source),
                    lost,
                    route: route.into_iter().map(NodeId::new).collect(),
                })
            }),
        (0u32..64, prop::collection::vec(loss_record(), 0..40), 0u32..8).prop_map(
            |(gossiper, lost, ttl)| {
                Envelope::Gossip(GossipMessage::RandomPull {
                    gossiper: NodeId::new(gossiper),
                    lost,
                    ttl,
                })
            }
        ),
        prop::collection::vec(event_id(), 0..40).prop_map(Envelope::Request),
        prop::collection::vec(event(), 0..3).prop_map(Envelope::Reply),
    ]
}

fn is_digest(env: &Envelope) -> bool {
    matches!(
        env,
        Envelope::Gossip(
            GossipMessage::PushDigest { .. }
                | GossipMessage::PullDigest { .. }
                | GossipMessage::SourcePull { .. }
                | GossipMessage::RandomPull { .. }
        )
    )
}

proptest! {
    /// decode ∘ encode is the identity on every fitted envelope, and
    /// the framed size is exactly the simulator's `wire_bits`.
    #[test]
    fn decode_inverts_encode(env in envelope(), payload_bits in payload_bits()) {
        let (fitted, dropped) = codec::fit(env.clone(), payload_bits);
        if dropped > 0 {
            prop_assert!(is_digest(&env), "only digests are trimmed");
        }
        match codec::encode(&fitted, payload_bits) {
            Ok(bytes) => {
                prop_assert_eq!(
                    bytes.len() as u64 * 8,
                    fitted.wire_bits(payload_bits),
                    "framed size equals wire_bits"
                );
                let back = codec::decode(&bytes, payload_bits).expect("valid frame decodes");
                prop_assert_eq!(back, fitted);
            }
            Err(CodecError::Overflow { .. }) => {
                // Only non-digest bodies may stay oversized after
                // fitting (fit cannot shrink an event or a reply).
                prop_assert!(!is_digest(&fitted) || dropped > 0);
            }
            Err(other) => prop_assert!(false, "unexpected encode error: {other:?}"),
        }
    }

    /// encode ∘ decode is the identity on every canonical frame: the
    /// codec admits exactly one byte representation per envelope.
    #[test]
    fn encode_inverts_decode(env in envelope(), payload_bits in payload_bits()) {
        let (fitted, _) = codec::fit(env, payload_bits);
        let Ok(bytes) = codec::encode(&fitted, payload_bits) else {
            // Oversized non-digest body: no frame to invert.
            return Ok(());
        };
        let back = codec::decode(&bytes, payload_bits).expect("valid frame decodes");
        let reencoded = codec::encode(&back, payload_bits).expect("decoded envelope re-encodes");
        prop_assert_eq!(reencoded, bytes);
    }

    /// Truncated frames never decode successfully — and never panic.
    #[test]
    fn truncated_frames_are_rejected(env in envelope(), payload_bits in payload_bits()) {
        let (fitted, _) = codec::fit(env, payload_bits);
        let Ok(bytes) = codec::encode(&fitted, payload_bits) else {
            return Ok(());
        };
        if bytes.len() > 1 {
            let truncated = &bytes[..bytes.len() - 1];
            prop_assert!(codec::decode(truncated, payload_bits).is_err());
        }
    }
}
