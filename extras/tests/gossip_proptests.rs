//! Property-based tests of the recovery algorithms.

use eps_gossip::{Algorithm, GossipAction, GossipConfig, LostBuffer};
use eps_overlay::NodeId;
use eps_pubsub::{Dispatcher, DispatcherConfig, Event, EventId, LossRecord, PatternId};
use eps_sim::RngFactory;
use proptest::prelude::*;

fn record((source, pattern, seq): (u32, u16, u64)) -> LossRecord {
    LossRecord {
        source: NodeId::new(source),
        pattern: PatternId::new(pattern),
        seq,
    }
}

proptest! {
    /// The Lost buffer's outstanding count equals |added \ cleared|,
    /// for arbitrary interleavings.
    #[test]
    fn lost_buffer_bookkeeping(
        adds in prop::collection::vec((0u32..5, 0u16..5, 0u64..10), 0..100),
        clears in prop::collection::vec((0u32..5, 0u16..5, 0u64..10), 0..100),
    ) {
        let mut lost = LostBuffer::new(u32::MAX);
        let mut model = std::collections::BTreeSet::new();
        for &t in &adds {
            lost.add(record(t));
            model.insert(record(t));
        }
        for &(source, pattern, seq) in &clears {
            let event = Event::new(
                EventId::new(NodeId::new(source), seq),
                vec![(PatternId::new(pattern), seq)],
            );
            lost.clear_for_event(&event);
            model.remove(&record((source, pattern, seq)));
        }
        prop_assert_eq!(lost.len(), model.len());
        for rec in &model {
            prop_assert!(lost.contains(rec));
        }
    }

    /// Selection never returns entries that were recovered, and
    /// repeated selection eventually abandons everything.
    #[test]
    fn lost_buffer_selection_respects_attempts(
        entries in prop::collection::btree_set((0u32..4, 0u16..4, 0u64..20), 1..40),
        max_attempts in 1u32..6,
    ) {
        let mut lost = LostBuffer::new(max_attempts);
        for &t in &entries {
            lost.add(record(t));
        }
        let mut total_selected = 0usize;
        // Selecting everything max_attempts times drains the buffer.
        for _ in 0..max_attempts {
            total_selected += lost.any(entries.len()).len();
        }
        prop_assert!(lost.is_empty(), "buffer should be exhausted");
        prop_assert_eq!(total_selected, entries.len() * max_attempts as usize);
        prop_assert_eq!(lost.abandoned_total(), entries.len() as u64);
    }

    /// For every algorithm: feeding losses then the matching events
    /// always returns the outstanding count to zero, and rounds after
    /// that emit nothing (pull variants) or only push digests.
    #[test]
    fn losses_reconcile_for_every_algorithm(
        kind_idx in 0usize..Algorithm::paper().len(),
        tuples in prop::collection::btree_set((0u32..4, 0u16..4, 0u64..20), 1..30),
        seed in any::<u64>(),
    ) {
        let kind = Algorithm::paper()[kind_idx].clone();
        let mut algo = kind.build(GossipConfig::default());
        let losses: Vec<LossRecord> = tuples.iter().map(|&t| record(t)).collect();
        algo.on_losses(&losses);
        if kind != Algorithm::no_recovery() && kind != Algorithm::push() {
            prop_assert_eq!(algo.outstanding_losses(), losses.len());
        }
        for rec in &losses {
            let event = Event::new(
                EventId::new(rec.source, rec.seq),
                vec![(rec.pattern, rec.seq)],
            );
            algo.on_event_received(&event);
        }
        prop_assert_eq!(algo.outstanding_losses(), 0);
        // With nothing outstanding and an empty cache, a round emits
        // nothing.
        let node = Dispatcher::new(NodeId::new(9), DispatcherConfig::default());
        let mut rng = RngFactory::new(seed).stream("gossip");
        let actions = algo.on_round(&node, &[NodeId::new(1)], &mut rng);
        prop_assert!(actions.is_empty(), "{kind}: unexpected {actions:?}");
    }

    /// Gossip actions never target the node itself, and replies only
    /// carry events the node actually has cached.
    #[test]
    fn actions_are_well_formed(
        kind_idx in 0usize..Algorithm::paper().len(),
        cached_seqs in prop::collection::btree_set(0u64..30, 0..20),
        lost_seqs in prop::collection::btree_set(0u64..30, 1..20),
        seed in any::<u64>(),
    ) {
        let kind = Algorithm::paper()[kind_idx].clone();
        let p = PatternId::new(1);
        let src = NodeId::new(0);
        let me = NodeId::new(2);
        let mut node = Dispatcher::new(me, DispatcherConfig::default());
        node.subscribe_local(p, &[]);
        node.on_subscribe(p, NodeId::new(3), &[]);
        for &seq in &cached_seqs {
            node.on_event(
                Event::new(EventId::new(src, seq), vec![(p, seq)]),
                Some(NodeId::new(1)),
            );
        }
        let mut algo = kind.build(GossipConfig::default());
        algo.on_losses(
            &lost_seqs.iter().map(|&s| record((0, 1, s + 100))).collect::<Vec<_>>(),
        );
        let mut rng = RngFactory::new(seed).stream("gossip");
        let neighbors = [NodeId::new(1), NodeId::new(3)];
        let mut actions = algo.on_round(&node, &neighbors, &mut rng);
        // Also exercise the digest-handling path with a foreign pull
        // digest covering the cached range.
        let digest = eps_gossip::GossipMessage::PullDigest {
            gossiper: NodeId::new(7),
            pattern: p,
            lost: (0..30).map(|s| record((0, 1, s))).collect(),
        };
        actions.extend(algo.on_gossip(&node, NodeId::new(1), digest, &neighbors, &mut rng));
        for action in &actions {
            match action {
                GossipAction::Forward { to, .. } => prop_assert!(*to != me),
                GossipAction::Request { to, .. } => prop_assert!(*to != me),
                GossipAction::Reply { to, events } => {
                    prop_assert!(*to != me);
                    for e in events {
                        prop_assert!(node.cache().contains(e.id()),
                            "{kind} replied with an uncached event");
                    }
                }
            }
        }
    }
}

proptest! {
    /// The capacity bound is an invariant, not a hint: under arbitrary
    /// interleavings of adds, event-driven clears, and selections, the
    /// buffer never holds more than `cap` entries, and every added
    /// record is accounted for as outstanding, recovered, abandoned,
    /// or evicted.
    #[test]
    fn lost_buffer_never_exceeds_capacity(
        cap in 1usize..12,
        max_attempts in 1u32..4,
        ops in prop::collection::vec((0u8..3, 0u32..3, 0u16..3, 0u64..30), 0..200),
    ) {
        let mut lost = LostBuffer::with_capacity(max_attempts, cap);
        for &(op, source, pattern, seq) in &ops {
            match op {
                0 => lost.add(record((source, pattern, seq))),
                1 => {
                    let event = Event::new(
                        EventId::new(NodeId::new(source), seq),
                        vec![(PatternId::new(pattern), seq)],
                    );
                    lost.clear_for_event(&event);
                }
                _ => { lost.any(3); }
            }
            prop_assert!(
                lost.len() <= cap,
                "len {} exceeds capacity {}", lost.len(), cap
            );
        }
        prop_assert_eq!(lost.capacity(), cap);
        prop_assert_eq!(
            lost.added_total(),
            lost.len() as u64 + lost.recovered_total()
                + lost.abandoned_total() + lost.evicted_total()
        );
    }
}
