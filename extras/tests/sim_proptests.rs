//! Property-based tests of the simulation kernel.

use eps_sim::{quantile, Engine, RatioSeries, SimTime, Summary};
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order regardless of the
    /// schedule, and every scheduled event comes out exactly once.
    #[test]
    fn pops_are_time_ordered_and_complete(delays in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(d), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; delays.len()];
        while let Some((t, i)) = engine.pop() {
            prop_assert!(t >= last, "time went backwards");
            prop_assert_eq!(t, SimTime::from_nanos(delays[i]));
            prop_assert!(!seen[i], "event {} popped twice", i);
            seen[i] = true;
            last = t;
        }
        prop_assert!(seen.iter().all(|&s| s), "some event never fired");
    }

    /// Events scheduled for the same instant fire in scheduling order.
    #[test]
    fn ties_fire_in_fifo_order(
        count in 1usize..100,
        at in 0u64..1_000_000,
    ) {
        let mut engine = Engine::new();
        for i in 0..count {
            engine.schedule_at(SimTime::from_nanos(at), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| engine.pop().map(|(_, i)| i)).collect();
        prop_assert_eq!(order, (0..count).collect::<Vec<_>>());
    }

    /// Cancelling a subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        delays in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine = Engine::new();
        let ids: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| (i, engine.schedule_at(SimTime::from_nanos(d), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(engine.cancel(id));
            } else {
                expected.push(i);
            }
        }
        let mut fired: Vec<usize> =
            std::iter::from_fn(|| engine.pop().map(|(_, i)| i)).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// The ratio series conserves totals: summing bin numerators and
    /// denominators reproduces the inputs.
    #[test]
    fn ratio_series_conserves_mass(
        samples in prop::collection::vec((0u64..10_000_000u64, 0u32..50, 1u32..50), 1..200),
    ) {
        let mut series = RatioSeries::new(SimTime::from_millis(100));
        let mut num_total = 0f64;
        let mut den_total = 0f64;
        for &(at, num, den) in &samples {
            let num = num.min(den);
            series.add(SimTime::from_nanos(at), num as f64, den as f64);
            num_total += num as f64;
            den_total += den as f64;
        }
        let bins_num: f64 = series.bins().iter().map(|b| b.numerator).sum();
        let bins_den: f64 = series.bins().iter().map(|b| b.denominator).sum();
        prop_assert_eq!(bins_num, num_total);
        prop_assert_eq!(bins_den, den_total);
        prop_assert!((0.0..=1.0).contains(&series.total_ratio()));
        if let Some(min) = series.min_ratio() {
            prop_assert!(min <= series.total_ratio() + 1e-12);
        }
    }

    /// Merging summaries equals recording sequentially, up to float
    /// tolerance, for any split point.
    #[test]
    fn summary_merge_is_consistent(
        data in prop::collection::vec(-1e6f64..1e6, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = Summary::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        data[..split].iter().for_each(|&x| a.record(x));
        data[split..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() / (1.0 + whole.variance()) < 1e-6);
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Quantiles are bounded by the extremes and monotone in q.
    #[test]
    fn quantiles_are_bounded_and_monotone(
        data in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = quantile(&data, lo).unwrap();
        let v_hi = quantile(&data, hi).unwrap();
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= min - 1e-9 && v_hi <= max + 1e-9);
        prop_assert!(v_lo <= v_hi + 1e-9);
    }

    /// Virtual-time arithmetic: conversions round-trip within a
    /// nanosecond and ordering matches the underlying nanos.
    #[test]
    fn simtime_roundtrips(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = SimTime::from_nanos(a);
        let tb = SimTime::from_nanos(b);
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!((ta + tb).as_nanos(), a + b);
        prop_assert_eq!(ta.saturating_sub(tb).as_nanos(), a.saturating_sub(b));
        let secs = ta.as_secs_f64();
        if secs < 1e9 {
            let back = SimTime::from_secs_f64(secs);
            let diff = back.as_nanos().abs_diff(a);
            // f64 has 52 mantissa bits; allow proportional rounding.
            prop_assert!(diff as f64 <= 1.0 + a as f64 * 1e-15);
        }
    }
}
