//! Property-based tests of the publish-subscribe substrate.

use eps_overlay::{NodeId, Topology};
use eps_pubsub::{
    flood_subscriptions, install_local_subscriptions, Dispatcher, DispatcherConfig, Event,
    EventCache, EventId, LossDetector, PatternId, PatternSpace,
};
use eps_sim::RngFactory;
use proptest::prelude::*;

proptest! {
    /// Generated event content is always sorted, distinct, non-empty,
    /// bounded, and inside the universe.
    #[test]
    fn content_model_invariants(
        universe in 1u16..200,
        max_per_event in 1usize..6,
        seed in any::<u64>(),
    ) {
        let space = PatternSpace::new(universe, max_per_event);
        let mut rng = RngFactory::new(seed).stream("content");
        for _ in 0..50 {
            let content = space.random_content(&mut rng);
            prop_assert!(!content.is_empty());
            prop_assert!(content.len() <= max_per_event);
            prop_assert!(content.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(content.iter().all(|p| p.value() < universe));
        }
    }

    /// The FIFO cache never exceeds capacity and always retains
    /// exactly the most recent distinct events.
    #[test]
    fn cache_retains_exactly_the_newest(
        capacity in 1usize..50,
        count in 1u64..200,
    ) {
        let mut cache = EventCache::new(capacity);
        for seq in 0..count {
            cache.insert(Event::new(
                EventId::new(NodeId::new(0), seq),
                vec![(PatternId::new((seq % 70) as u16), seq)],
            ));
            prop_assert!(cache.len() <= capacity);
        }
        let first_kept = count.saturating_sub(capacity as u64);
        for seq in 0..count {
            let id = EventId::new(NodeId::new(0), seq);
            prop_assert_eq!(cache.contains(id), seq >= first_kept);
        }
    }

    /// The pattern-seq index agrees with the id index at all times.
    #[test]
    fn cache_indices_are_consistent(
        capacity in 1usize..30,
        seqs in prop::collection::vec(0u64..100, 1..100),
    ) {
        let mut cache = EventCache::new(capacity);
        for (i, &ps) in seqs.iter().enumerate() {
            cache.insert(Event::new(
                EventId::new(NodeId::new(0), i as u64),
                vec![(PatternId::new(1), ps * 1000 + i as u64)],
            ));
        }
        for event in cache.iter() {
            let &(p, s) = &event.pattern_seqs()[0];
            let via_index = cache.get_by_pattern_seq(event.source(), p, s);
            prop_assert_eq!(via_index.map(|e| e.id()), Some(event.id()));
        }
    }

    /// Feeding the detector a stream with gaps reports exactly the
    /// missing sequence numbers below the highest delivered one.
    #[test]
    fn detector_finds_exactly_the_gaps(delivered_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut det = LossDetector::new();
        let p = PatternId::new(5);
        let src = NodeId::new(3);
        let mut reported = Vec::new();
        for (seq, &keep) in delivered_mask.iter().enumerate() {
            if keep {
                let e = Event::new(EventId::new(src, seq as u64), vec![(p, seq as u64)]);
                reported.extend(det.observe(&e, |_| true).into_iter().map(|l| l.seq));
            }
        }
        let last_delivered = delivered_mask.iter().rposition(|&k| k);
        let expected: Vec<u64> = match last_delivered {
            None => vec![],
            Some(last) => (0..last)
                .filter(|&s| !delivered_mask[s])
                .map(|s| s as u64)
                .collect(),
        };
        let mut got = reported;
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Publishing assigns globally unique ids and dense per-pattern
    /// sequence numbers.
    #[test]
    fn publish_sequences_are_dense(
        contents in prop::collection::vec(
            prop::collection::btree_set(0u16..20, 1..4),
            1..100,
        ),
    ) {
        let mut d = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut per_pattern: std::collections::HashMap<u16, u64> = Default::default();
        let mut ids = std::collections::HashSet::new();
        for content in contents {
            let patterns: Vec<PatternId> =
                content.iter().map(|&p| PatternId::new(p)).collect();
            let (event, _) = d.publish(&patterns);
            prop_assert!(ids.insert(event.id()), "duplicate event id");
            for &(p, seq) in event.pattern_seqs() {
                let counter = per_pattern.entry(p.value()).or_insert(0);
                prop_assert_eq!(seq, *counter, "non-dense sequence for {}", p);
                *counter += 1;
            }
        }
    }

    /// After flooding, routing an event from any publisher reaches
    /// exactly the subscribers of its patterns (loss-free hand
    /// routing over the tree).
    #[test]
    fn routing_reaches_exactly_the_subscribers(
        n in 2usize..40,
        seed in any::<u64>(),
        publisher_raw in any::<u32>(),
    ) {
        let factory = RngFactory::new(seed);
        let topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let space = PatternSpace::paper_default();
        let mut subs_rng = factory.stream("subs");
        let subs: Vec<Vec<PatternId>> = (0..n)
            .map(|_| space.random_subscriptions(2, &mut subs_rng))
            .collect();
        let mut ds: Vec<Dispatcher> = topo
            .nodes()
            .map(|id| Dispatcher::new(id, DispatcherConfig::default()))
            .collect();
        install_local_subscriptions(&mut ds, &subs);
        flood_subscriptions(&mut ds, &topo);

        let publisher = NodeId::new(publisher_raw % n as u32);
        let content = space.random_content(&mut factory.stream("content"));
        let expected: std::collections::BTreeSet<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.iter().any(|p| content.contains(p)))
            .map(|(i, _)| i)
            .collect();

        let (event, receipt) = ds[publisher.index()].publish(&content);
        let mut delivered: std::collections::BTreeSet<usize> = Default::default();
        if receipt.delivered {
            delivered.insert(publisher.index());
        }
        let mut queue: Vec<(NodeId, NodeId, Event)> = receipt
            .forwards
            .into_iter()
            .map(|f| match f.msg {
                eps_pubsub::PubSubMessage::Event(e) => (f.to, publisher, e),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let mut hops = 0usize;
        while let Some((to, from, e)) = queue.pop() {
            hops += 1;
            prop_assert!(hops <= 4 * n, "routing does not terminate");
            let r = ds[to.index()].on_event(e, Some(from));
            if r.delivered {
                delivered.insert(to.index());
            }
            for f in r.forwards {
                match f.msg {
                    eps_pubsub::PubSubMessage::Event(e) => queue.push((f.to, to, e)),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        prop_assert_eq!(delivered, expected, "event {} mis-routed", event.id());
    }

    /// Route recording reconstructs the actual tree path from the
    /// publisher to any receiver.
    #[test]
    fn recorded_routes_match_tree_paths(
        n in 2usize..40,
        seed in any::<u64>(),
    ) {
        let factory = RngFactory::new(seed);
        let topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let config = DispatcherConfig {
            record_routes: true,
            ..DispatcherConfig::default()
        };
        let mut ds: Vec<Dispatcher> = topo
            .nodes()
            .map(|id| Dispatcher::new(id, config))
            .collect();
        // Everyone subscribes to pattern 0 so the event floods the tree.
        let p = PatternId::new(0);
        let subs: Vec<Vec<PatternId>> = vec![vec![p]; n];
        install_local_subscriptions(&mut ds, &subs);
        flood_subscriptions(&mut ds, &topo);

        let publisher = NodeId::new(0);
        let (_, receipt) = ds[0].publish(&[p]);
        let mut queue: Vec<(NodeId, NodeId, Event)> = receipt
            .forwards
            .into_iter()
            .map(|f| match f.msg {
                eps_pubsub::PubSubMessage::Event(e) => (f.to, publisher, e),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        while let Some((to, from, e)) = queue.pop() {
            let r = ds[to.index()].on_event(e, Some(from));
            for f in r.forwards {
                match f.msg {
                    eps_pubsub::PubSubMessage::Event(e) => queue.push((f.to, to, e)),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        for node in topo.nodes().skip(1) {
            let recorded = ds[node.index()]
                .routes()
                .route_from(publisher)
                .expect("event reached everyone");
            let expected = topo.path(publisher, node).unwrap();
            prop_assert_eq!(recorded, &expected[..]);
        }
    }
}
