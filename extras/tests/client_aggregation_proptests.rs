//! Model-based test of the client layer: the same random op sequence
//! (client subscribes, unsubscribes, and event deliveries) drives the
//! flat sorted [`ClientRegistry`] and a naive per-client reference
//! model (`BTreeMap<ClientId, BTreeSet<PatternId>>`), and every
//! observable must agree op-for-op. This is the guard for the
//! aggregation layer's two claims:
//!
//! - **Covering never loses a delivery.** The set of clients the
//!   registry fans an event out to equals the clients whose own
//!   subscription set matches the event — aggregation is invisible to
//!   delivery semantics.
//! - **Refcounted retraction never strands routing state.** After any
//!   churn sequence, the aggregate filter equals the union of the
//!   per-client sets, and a dispatcher driven through
//!   `client_subscribe`/`client_unsubscribe` holds exactly the
//!   aggregate in its routing table's local interface — nothing
//!   lingers after the last client drops a pattern.

use std::collections::{BTreeMap, BTreeSet};

use eps_overlay::NodeId;
use eps_pubsub::{
    ClientId, ClientRegistry, Dispatcher, DispatcherConfig, Event, EventId, PatternId,
};
use proptest::prelude::*;

/// One randomly generated client-layer operation.
#[derive(Clone, Debug)]
enum Op {
    Subscribe(u32, u16),
    Unsubscribe(u32, u16),
    Deliver(BTreeSet<u16>),
}

/// The reference model: each client's own subscription set, with
/// emptied clients removed. The aggregate is derived, never cached —
/// the registry's refcounting must reproduce it exactly.
#[derive(Default)]
struct Model {
    clients: BTreeMap<ClientId, BTreeSet<PatternId>>,
}

impl Model {
    /// `true` when the aggregate grew: no other client held `pattern`.
    fn subscribe(&mut self, client: ClientId, pattern: PatternId) -> bool {
        let covered = self.covers(pattern);
        self.clients.entry(client).or_default().insert(pattern) && !covered
    }

    /// `true` when the aggregate shrank: the last holder dropped it.
    fn unsubscribe(&mut self, client: ClientId, pattern: PatternId) -> bool {
        let Some(set) = self.clients.get_mut(&client) else {
            return false;
        };
        if !set.remove(&pattern) {
            return false;
        }
        if set.is_empty() {
            self.clients.remove(&client);
        }
        !self.covers(pattern)
    }

    fn covers(&self, pattern: PatternId) -> bool {
        self.clients.values().any(|set| set.contains(&pattern))
    }

    fn refcount(&self, pattern: PatternId) -> usize {
        self.clients
            .values()
            .filter(|set| set.contains(&pattern))
            .count()
    }

    fn aggregate(&self) -> BTreeSet<PatternId> {
        self.clients.values().flatten().copied().collect()
    }

    fn len(&self) -> usize {
        self.clients.values().map(BTreeSet::len).sum()
    }

    /// Per-client delivery: every client whose own set intersects the
    /// event's patterns, exactly once, ascending.
    fn matching_clients(&self, event: &Event) -> Vec<ClientId> {
        self.clients
            .iter()
            .filter(|(_, set)| event.patterns().any(|p| set.contains(&p)))
            .map(|(&c, _)| c)
            .collect()
    }
}

fn event(patterns: &BTreeSet<u16>) -> Event {
    Event::new(
        EventId::new(NodeId::new(0), 0),
        patterns
            .iter()
            .map(|&p| (PatternId::new(p), 0))
            .collect::<Vec<_>>(),
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..8, 0u16..24).prop_map(|(c, p)| Op::Subscribe(c, p)),
        2 => (0u32..8, 0u16..24).prop_map(|(c, p)| Op::Unsubscribe(c, p)),
        1 => proptest::collection::btree_set(0u16..24, 1..4).prop_map(Op::Deliver),
    ]
}

proptest! {
    /// The registry and the per-client reference model agree on every
    /// observable after every op: transition return values, covering,
    /// refcounts, the aggregate filter, and event fan-out.
    #[test]
    fn registry_matches_per_client_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut registry = ClientRegistry::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Subscribe(c, p) => {
                    let (client, pattern) = (ClientId::new(c), PatternId::new(p));
                    prop_assert_eq!(
                        registry.subscribe(client, pattern),
                        model.subscribe(client, pattern),
                        "aggregate-grew transition disagrees"
                    );
                }
                Op::Unsubscribe(c, p) => {
                    let (client, pattern) = (ClientId::new(c), PatternId::new(p));
                    prop_assert_eq!(
                        registry.unsubscribe(client, pattern),
                        model.unsubscribe(client, pattern),
                        "aggregate-shrank transition disagrees"
                    );
                }
                Op::Deliver(patterns) => {
                    let ev = event(&patterns);
                    let mut out = Vec::new();
                    registry.matching_clients_into(&ev, &mut out);
                    prop_assert_eq!(
                        out,
                        model.matching_clients(&ev),
                        "covering changed delivery semantics"
                    );
                }
            }
            prop_assert_eq!(registry.len(), model.len());
            let aggregate: Vec<PatternId> = registry.aggregate_patterns().collect();
            let expected: Vec<PatternId> = model.aggregate().into_iter().collect();
            prop_assert_eq!(aggregate, expected, "aggregate filter drifted");
            for p in 0u16..24 {
                let pattern = PatternId::new(p);
                prop_assert_eq!(registry.covers(pattern), model.covers(pattern));
                prop_assert_eq!(registry.refcount(pattern), model.refcount(pattern));
            }
        }
    }

    /// A dispatcher driven through the client API holds exactly the
    /// aggregate in its routing table: unsubscribe churn retracts a
    /// pattern precisely when the last client drops it, stranding
    /// nothing.
    #[test]
    fn dispatcher_routing_state_is_exactly_the_aggregate(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut node = Dispatcher::new(NodeId::new(0), DispatcherConfig::default());
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Subscribe(c, p) => {
                    let (client, pattern) = (ClientId::new(c), PatternId::new(p));
                    node.client_subscribe(client, pattern, &[]);
                    model.subscribe(client, pattern);
                }
                Op::Unsubscribe(c, p) => {
                    let (client, pattern) = (ClientId::new(c), PatternId::new(p));
                    node.client_unsubscribe(client, pattern, &[]);
                    model.unsubscribe(client, pattern);
                }
                Op::Deliver(_) => {}
            }
            let local: Vec<PatternId> = node.table().local_patterns().collect();
            let expected: Vec<PatternId> = model.aggregate().into_iter().collect();
            prop_assert_eq!(local, expected, "routing state drifted from the aggregate");
        }
    }
}
