//! Property-based tests of the overlay substrate.

use eps_overlay::{plan_reconfiguration, plan_reconnection, LinkSpec, LinkTable, NodeId, Topology};
use eps_sim::{RngFactory, SimTime};
use proptest::prelude::*;

proptest! {
    /// Random trees are always connected, acyclic, and degree-bounded,
    /// for any size, bound, and seed.
    #[test]
    fn random_trees_are_valid(
        n in 1usize..300,
        max_degree in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = RngFactory::new(seed).stream("topology");
        let topo = Topology::random_tree(n, max_degree, &mut rng);
        prop_assert_eq!(topo.len(), n);
        prop_assert!(topo.is_tree());
        prop_assert!(topo.nodes().all(|v| topo.degree(v) <= max_degree));
        // Link symmetry: a link appears in both adjacency lists.
        for link in topo.links() {
            prop_assert!(topo.neighbors(link.a()).contains(&link.b()));
            prop_assert!(topo.neighbors(link.b()).contains(&link.a()));
        }
    }

    /// Tree paths are unique, adjacent hop by hop, and symmetric.
    #[test]
    fn tree_paths_are_simple_and_symmetric(
        n in 2usize..150,
        seed in any::<u64>(),
        a_raw in any::<u32>(),
        b_raw in any::<u32>(),
    ) {
        let mut rng = RngFactory::new(seed).stream("topology");
        let topo = Topology::random_tree(n, 4, &mut rng);
        let a = NodeId::new(a_raw % n as u32);
        let b = NodeId::new(b_raw % n as u32);
        let path = topo.path(a, b).expect("trees are connected");
        prop_assert_eq!(*path.first().unwrap(), a);
        prop_assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            prop_assert!(topo.has_link(w[0], w[1]));
        }
        // No repeated nodes (simple path).
        let mut dedup = path.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), path.len());
        // Symmetry.
        let mut reverse = topo.path(b, a).unwrap();
        reverse.reverse();
        prop_assert_eq!(reverse, path);
    }

    /// A long storm of single reconfigurations always leaves a valid
    /// tree behind.
    #[test]
    fn reconfiguration_storm_preserves_the_tree(
        n in 2usize..100,
        steps in 0usize..60,
        seed in any::<u64>(),
    ) {
        let factory = RngFactory::new(seed);
        let mut topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let mut rng = factory.stream("reconfig");
        for _ in 0..steps {
            if let Some(plan) = plan_reconfiguration(&topo, &mut rng) {
                topo.remove_link(plan.broken).unwrap();
                topo.add_link(plan.replacement.0, plan.replacement.1).unwrap();
            }
        }
        prop_assert!(topo.is_tree());
    }

    /// Overlapping breaks followed by as many reconnections always
    /// converge back to a tree.
    #[test]
    fn reconnections_heal_any_fragmentation(
        n in 3usize..80,
        breaks in 1usize..6,
        seed in any::<u64>(),
    ) {
        let factory = RngFactory::new(seed);
        let mut topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let mut rng = factory.stream("reconfig");
        let mut broken = 0;
        for _ in 0..breaks {
            let Some(link) = topo.links().next() else { break };
            topo.remove_link(link).unwrap();
            broken += 1;
        }
        for _ in 0..broken {
            if let Some((x, y)) = plan_reconnection(&topo, &mut rng) {
                topo.add_link(x, y).unwrap();
            }
        }
        prop_assert!(topo.is_tree());
    }

    /// Link transmissions never violate causality, and back-to-back
    /// sends in one direction arrive in FIFO order.
    #[test]
    fn link_arrivals_are_causal_and_fifo(
        sizes in prop::collection::vec(1u64..100_000, 1..50),
        start_ns in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(seed).stream("loss");
        let now = SimTime::from_nanos(start_ns);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut last_arrival = SimTime::ZERO;
        for &bits in &sizes {
            let t = table
                .transmit(&spec, a, b, bits, now, &mut rng)
                .arrival()
                .expect("lossless link");
            prop_assert!(t >= now + spec.propagation);
            prop_assert!(t >= last_arrival, "FIFO violated");
            last_arrival = t;
        }
        prop_assert_eq!(table.transmitted(), sizes.len() as u64);
        prop_assert_eq!(table.lost(), 0);
    }

    /// Serialization delay is additive in message size.
    #[test]
    fn serialization_is_additive(x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let dx = spec.serialization_delay(x);
        let dy = spec.serialization_delay(y);
        let dxy = spec.serialization_delay(x + y);
        // Integer division may round each part down by < 1 ns.
        let sum = dx + dy;
        prop_assert!(dxy >= sum);
        prop_assert!(dxy.as_nanos() - sum.as_nanos() <= 2);
    }
}
