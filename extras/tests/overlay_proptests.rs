//! Property-based tests of the overlay substrate.

use eps_overlay::{
    plan_reconfiguration, plan_reconnection, LinkSpec, LinkTable, NodeId, OverlayKind, RoutingView,
    Topology, BA_ATTACHMENTS,
};
use eps_sim::{RngFactory, SimTime};
use proptest::prelude::*;

/// The smallest admissible (n, max_degree) floor per builder: BA needs
/// room for `2 * BA_ATTACHMENTS` links per node, WS needs the ring
/// lattice (degree 4) plus one spare for rewiring.
fn builder_floor(kind: OverlayKind) -> (usize, usize) {
    match kind {
        OverlayKind::Tree => (1, 2),
        OverlayKind::BarabasiAlbert => (BA_ATTACHMENTS + 1, 2 * BA_ATTACHMENTS),
        OverlayKind::WattsStrogatz => (5, 5),
    }
}

proptest! {
    /// Random trees are always connected, acyclic, and degree-bounded,
    /// for any size, bound, and seed.
    #[test]
    fn random_trees_are_valid(
        n in 1usize..300,
        max_degree in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = RngFactory::new(seed).stream("topology");
        let topo = Topology::random_tree(n, max_degree, &mut rng);
        prop_assert_eq!(topo.len(), n);
        prop_assert!(topo.is_tree());
        prop_assert!(topo.nodes().all(|v| topo.degree(v) <= max_degree));
        // Link symmetry: a link appears in both adjacency lists.
        for link in topo.links() {
            prop_assert!(topo.neighbors(link.a()).contains(&link.b()));
            prop_assert!(topo.neighbors(link.b()).contains(&link.a()));
        }
    }

    /// Every builder yields a connected, degree-bounded graph with
    /// symmetric adjacency, for any admissible size, bound, and seed.
    #[test]
    fn every_builder_is_connected_and_degree_bounded(
        kind_idx in 0usize..3,
        n_extra in 0usize..200,
        degree_extra in 0usize..5,
        seed in any::<u64>(),
    ) {
        let kind = OverlayKind::all()[kind_idx];
        let (n_floor, degree_floor) = builder_floor(kind);
        let n = n_floor + n_extra;
        let max_degree = degree_floor + degree_extra;
        let mut rng = RngFactory::new(seed).stream("topology");
        let topo = Topology::build(kind, n, max_degree, &mut rng);
        prop_assert_eq!(topo.len(), n);
        prop_assert!(topo.is_connected());
        prop_assert!(topo.nodes().all(|v| topo.degree(v) <= max_degree));
        if kind.is_tree() {
            prop_assert!(topo.is_tree());
        }
        for link in topo.links() {
            prop_assert!(topo.neighbors(link.a()).contains(&link.b()));
            prop_assert!(topo.neighbors(link.b()).contains(&link.a()));
        }
    }

    /// Builders are pure functions of (kind, n, max_degree, seed): the
    /// same inputs reproduce the identical link set and neighbor order.
    #[test]
    fn builders_are_seed_deterministic(
        kind_idx in 0usize..3,
        n_extra in 0usize..120,
        seed in any::<u64>(),
    ) {
        let kind = OverlayKind::all()[kind_idx];
        let (n_floor, degree_floor) = builder_floor(kind);
        let n = n_floor + n_extra;
        let build = || {
            let mut rng = RngFactory::new(seed).stream("topology");
            Topology::build(kind, n, degree_floor + 1, &mut rng)
        };
        let (a, b) = (build(), build());
        prop_assert_eq!(a.link_count(), b.link_count());
        for v in a.nodes() {
            prop_assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    /// The routing view of a tree IS the tree: identity, same links,
    /// same neighbor order. The view of a cyclic graph is a spanning
    /// tree of it — every view link exists in the physical graph, and
    /// the cross neighbors are exactly the physical remainder.
    #[test]
    fn routing_view_spans_the_graph_and_is_identity_on_trees(
        kind_idx in 0usize..3,
        n_extra in 0usize..120,
        seed in any::<u64>(),
    ) {
        let kind = OverlayKind::all()[kind_idx];
        let (n_floor, degree_floor) = builder_floor(kind);
        let n = n_floor + n_extra;
        let mut rng = RngFactory::new(seed).stream("topology");
        let topo = Topology::build(kind, n, degree_floor + 1, &mut rng);
        let view = RoutingView::derive(&topo);
        prop_assert!(view.tree().is_tree());
        prop_assert_eq!(view.tree().len(), n);
        prop_assert_eq!(view.is_identity(), topo.is_tree());
        if view.is_identity() {
            prop_assert_eq!(view.tree().link_count(), topo.link_count());
        }
        for v in topo.nodes() {
            if view.is_identity() {
                prop_assert_eq!(view.neighbors(v), topo.neighbors(v));
            }
            // Every view link is physical; view + cross = physical.
            let cross = view.cross_neighbors(&topo, v);
            for &u in view.neighbors(v) {
                prop_assert!(topo.has_link(v, u));
                prop_assert!(!cross.contains(&u));
            }
            prop_assert_eq!(
                view.neighbors(v).len() + cross.len(),
                topo.degree(v)
            );
        }
    }

    /// Tree paths are unique, adjacent hop by hop, and symmetric.
    #[test]
    fn tree_paths_are_simple_and_symmetric(
        n in 2usize..150,
        seed in any::<u64>(),
        a_raw in any::<u32>(),
        b_raw in any::<u32>(),
    ) {
        let mut rng = RngFactory::new(seed).stream("topology");
        let topo = Topology::random_tree(n, 4, &mut rng);
        let a = NodeId::new(a_raw % n as u32);
        let b = NodeId::new(b_raw % n as u32);
        let path = topo.path(a, b).expect("trees are connected");
        prop_assert_eq!(*path.first().unwrap(), a);
        prop_assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            prop_assert!(topo.has_link(w[0], w[1]));
        }
        // No repeated nodes (simple path).
        let mut dedup = path.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), path.len());
        // Symmetry.
        let mut reverse = topo.path(b, a).unwrap();
        reverse.reverse();
        prop_assert_eq!(reverse, path);
    }

    /// A long storm of single reconfigurations always leaves a valid
    /// tree behind.
    #[test]
    fn reconfiguration_storm_preserves_the_tree(
        n in 2usize..100,
        steps in 0usize..60,
        seed in any::<u64>(),
    ) {
        let factory = RngFactory::new(seed);
        let mut topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let mut rng = factory.stream("reconfig");
        for _ in 0..steps {
            if let Some(plan) = plan_reconfiguration(&topo, &mut rng) {
                topo.remove_link(plan.broken).unwrap();
                topo.add_link(plan.replacement.0, plan.replacement.1).unwrap();
            }
        }
        prop_assert!(topo.is_tree());
    }

    /// Overlapping breaks followed by as many reconnections always
    /// converge back to a tree.
    #[test]
    fn reconnections_heal_any_fragmentation(
        n in 3usize..80,
        breaks in 1usize..6,
        seed in any::<u64>(),
    ) {
        let factory = RngFactory::new(seed);
        let mut topo = Topology::random_tree(n, 4, &mut factory.stream("topology"));
        let mut rng = factory.stream("reconfig");
        let mut broken = 0;
        for _ in 0..breaks {
            let Some(link) = topo.links().next() else { break };
            topo.remove_link(link).unwrap();
            broken += 1;
        }
        for _ in 0..broken {
            if let Some((x, y)) = plan_reconnection(&topo, &mut rng) {
                topo.add_link(x, y).unwrap();
            }
        }
        prop_assert!(topo.is_tree());
    }

    /// Link transmissions never violate causality, and back-to-back
    /// sends in one direction arrive in FIFO order.
    #[test]
    fn link_arrivals_are_causal_and_fifo(
        sizes in prop::collection::vec(1u64..100_000, 1..50),
        start_ns in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let mut table = LinkTable::new();
        let mut rng = RngFactory::new(seed).stream("loss");
        let now = SimTime::from_nanos(start_ns);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut last_arrival = SimTime::ZERO;
        for &bits in &sizes {
            let t = table
                .transmit(&spec, a, b, bits, now, &mut rng)
                .arrival()
                .expect("lossless link");
            prop_assert!(t >= now + spec.propagation);
            prop_assert!(t >= last_arrival, "FIFO violated");
            last_arrival = t;
        }
        prop_assert_eq!(table.transmitted(), sizes.len() as u64);
        prop_assert_eq!(table.lost(), 0);
    }

    /// Serialization delay is additive in message size.
    #[test]
    fn serialization_is_additive(x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let spec = LinkSpec::ethernet_10mbps(0.0);
        let dx = spec.serialization_delay(x);
        let dy = spec.serialization_delay(y);
        let dxy = spec.serialization_delay(x + y);
        // Integer division may round each part down by < 1 ns.
        let sum = dx + dy;
        prop_assert!(dxy >= sum);
        prop_assert!(dxy.as_nanos() - sum.as_nanos() <= 2);
    }
}
