//! Model-based test of the dense [`SubscriptionTable`]: the same
//! random op sequence drives the slot-indexed/bitset implementation
//! and a naive `BTreeMap` reference model, and every observable —
//! return values, membership queries, and iteration order — must
//! agree at every step. This is the guard for the dense layout's core
//! claim: set-bit order over a sorted slot registry reproduces the
//! ascending-id order the rest of the stack (and the golden suite)
//! depends on.

use std::collections::{BTreeMap, BTreeSet};

use eps_overlay::NodeId;
use eps_pubsub::{Event, EventId, Interface, PatternId, SubscriptionTable};
use proptest::prelude::*;

/// One randomly generated table operation.
#[derive(Clone, Debug)]
enum Op {
    InsertLocal(u16),
    InsertNeighbor(u16, u32),
    RemoveLocal(u16),
    RemoveNeighbor(u16, u32),
    DropNeighbor(u32),
    Match(BTreeSet<u16>, Option<u32>),
}

/// The reference model: pattern -> (local flag, neighbor set), with
/// fully-empty entries removed so `len` is the known-pattern count.
#[derive(Default)]
struct Model {
    entries: BTreeMap<PatternId, (bool, BTreeSet<NodeId>)>,
}

impl Model {
    fn insert(&mut self, pattern: PatternId, iface: Interface) -> bool {
        let entry = self.entries.entry(pattern).or_default();
        match iface {
            Interface::Local => !std::mem::replace(&mut entry.0, true),
            Interface::Neighbor(n) => entry.1.insert(n),
        }
    }

    fn remove(&mut self, pattern: PatternId, iface: Interface) -> bool {
        let Some(entry) = self.entries.get_mut(&pattern) else {
            return false;
        };
        let removed = match iface {
            Interface::Local => std::mem::replace(&mut entry.0, false),
            Interface::Neighbor(n) => entry.1.remove(&n),
        };
        if !entry.0 && entry.1.is_empty() {
            self.entries.remove(&pattern);
        }
        removed
    }

    fn drop_neighbor(&mut self, neighbor: NodeId) -> Vec<PatternId> {
        let affected: Vec<PatternId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.1.contains(&neighbor))
            .map(|(&p, _)| p)
            .collect();
        for p in &affected {
            self.remove(*p, Interface::Neighbor(neighbor));
        }
        affected
    }

    fn neighbors_for(&self, pattern: PatternId, exclude: Option<NodeId>) -> Vec<NodeId> {
        self.entries
            .get(&pattern)
            .into_iter()
            .flat_map(|e| e.1.iter().copied())
            .filter(|&n| Some(n) != exclude)
            .collect()
    }

    fn matching_neighbors(&self, event: &Event, from: Option<NodeId>) -> Vec<NodeId> {
        let mut union: BTreeSet<NodeId> = BTreeSet::new();
        for p in event.patterns() {
            if let Some(e) = self.entries.get(&p) {
                union.extend(e.1.iter().copied());
            }
        }
        if let Some(f) = from {
            union.remove(&f);
        }
        union.into_iter().collect()
    }
}

fn op_strategy(universe: u16, nodes: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe).prop_map(Op::InsertLocal),
        3 => (0..universe, 0..nodes).prop_map(|(p, n)| Op::InsertNeighbor(p, n)),
        (0..universe).prop_map(Op::RemoveLocal),
        (0..universe, 0..nodes).prop_map(|(p, n)| Op::RemoveNeighbor(p, n)),
        (0..nodes).prop_map(Op::DropNeighbor),
        (
            prop::collection::btree_set(0..universe, 1..=3),
            prop::option::of(0..nodes),
        )
            .prop_map(|(ps, f)| Op::Match(ps, f)),
    ]
}

/// Checks every observable the rest of the stack reads, including
/// iteration order.
fn assert_same_state(table: &SubscriptionTable, model: &Model, universe: u16) {
    assert_eq!(table.len(), model.entries.len());
    assert_eq!(table.is_empty(), model.entries.is_empty());
    let all: Vec<PatternId> = table.all_patterns().collect();
    let model_all: Vec<PatternId> = model.entries.keys().copied().collect();
    assert_eq!(all, model_all, "all_patterns order diverged");
    let locals: Vec<PatternId> = table.local_patterns().collect();
    let model_locals: Vec<PatternId> = model
        .entries
        .iter()
        .filter(|(_, e)| e.0)
        .map(|(&p, _)| p)
        .collect();
    assert_eq!(locals, model_locals, "local_patterns order diverged");
    for v in 0..universe {
        let p = PatternId::new(v);
        assert_eq!(table.knows(p), model.entries.contains_key(&p));
        assert_eq!(
            table.has_local(p),
            model.entries.get(&p).is_some_and(|e| e.0)
        );
        assert_eq!(
            table.neighbors_for(p, None),
            model.neighbors_for(p, None),
            "neighbors_for({v}) order diverged"
        );
    }
}

fn run_ops(mut table: SubscriptionTable, ops: &[Op], universe: u16) -> SubscriptionTable {
    let mut model = Model::default();
    let mut seq = 0u64;
    for op in ops {
        match op {
            Op::InsertLocal(p) => {
                let p = PatternId::new(*p);
                assert_eq!(
                    table.insert(p, Interface::Local),
                    model.insert(p, Interface::Local)
                );
            }
            Op::InsertNeighbor(p, n) => {
                let (p, iface) = (PatternId::new(*p), Interface::Neighbor(NodeId::new(*n)));
                assert_eq!(table.insert(p, iface), model.insert(p, iface));
            }
            Op::RemoveLocal(p) => {
                let p = PatternId::new(*p);
                assert_eq!(
                    table.remove(p, Interface::Local),
                    model.remove(p, Interface::Local)
                );
            }
            Op::RemoveNeighbor(p, n) => {
                let (p, iface) = (PatternId::new(*p), Interface::Neighbor(NodeId::new(*n)));
                assert_eq!(table.remove(p, iface), model.remove(p, iface));
            }
            Op::DropNeighbor(n) => {
                let n = NodeId::new(*n);
                assert_eq!(
                    table.remove_neighbor(n),
                    model.drop_neighbor(n),
                    "remove_neighbor affected-pattern order diverged"
                );
            }
            Op::Match(patterns, from) => {
                seq += 1;
                let content: Vec<(PatternId, u64)> = patterns
                    .iter()
                    .map(|&v| (PatternId::new(v), seq))
                    .collect();
                let event = Event::new(EventId::new(NodeId::new(0), seq), content);
                let from = from.map(NodeId::new);
                assert_eq!(
                    table.matching_neighbors(&event, from),
                    model.matching_neighbors(&event, from),
                    "matching_neighbors order diverged"
                );
            }
        }
        assert_same_state(&table, &model, universe);
    }
    table
}

proptest! {
    /// A grow-on-demand table tracks the model exactly, op for op.
    #[test]
    fn dense_table_matches_btreemap_model(
        ops in prop::collection::vec(op_strategy(24, 40), 1..120),
    ) {
        run_ops(SubscriptionTable::new(), &ops, 24);
    }

    /// A preallocated table behaves identically to a grow-on-demand
    /// one over the same ops, and the two end up semantically equal —
    /// capacity hints must never change observable behavior.
    #[test]
    fn preallocated_table_matches_model_and_grown_twin(
        ops in prop::collection::vec(op_strategy(24, 40), 1..120),
    ) {
        let grown = run_ops(SubscriptionTable::new(), &ops, 24);
        let sized = run_ops(SubscriptionTable::with_dims(24, 40), &ops, 24);
        prop_assert_eq!(grown, sized);
    }

    /// Neighbor populations past 64 force the bitset into spill words;
    /// the model must still be tracked exactly (ordering across word
    /// boundaries, slot renumbering on removal).
    #[test]
    fn wide_neighborhoods_spill_correctly(
        ops in prop::collection::vec(op_strategy(8, 200), 1..150),
    ) {
        run_ops(SubscriptionTable::new(), &ops, 8);
    }
}
