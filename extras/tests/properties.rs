//! Cross-crate property-based tests: whole-scenario invariants under
//! randomized configurations, plus protocol-level properties that span
//! the overlay and pubsub layers.

use epidemic_pubsub::gossip::Algorithm;
use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
use epidemic_pubsub::overlay::{plan_reconfiguration, Topology};
use epidemic_pubsub::pubsub::{
    flood_subscriptions, install_local_subscriptions, Dispatcher, DispatcherConfig, PatternId,
    PatternSpace,
};
use epidemic_pubsub::sim::{RngFactory, SimTime};
use proptest::prelude::*;

fn algorithm_strategy() -> impl Strategy<Value = Algorithm> {
    prop::sample::select(Algorithm::paper().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the configuration, a run completes and reports
    /// consistent numbers.
    #[test]
    fn scenario_invariants_hold(
        seed in 0u64..1000,
        nodes in 2usize..40,
        eps in 0.0f64..0.3,
        buffer in 0usize..3000,
        churn_ms in prop::option::of(20u64..500),
        kind in algorithm_strategy(),
    ) {
        let config = ScenarioConfig {
            seed,
            nodes,
            link_error_rate: eps,
            buffer_size: buffer,
            publish_rate: 10.0,
            duration: SimTime::from_secs(2),
            warmup: SimTime::from_millis(200),
            cooldown: SimTime::from_millis(500),
            churn_interval: churn_ms.map(SimTime::from_millis),
            algorithm: kind,
            ..ScenarioConfig::default()
        };
        let r = run_scenario(&config);
        prop_assert!((0.0..=1.0).contains(&r.delivery_rate));
        prop_assert!((0.0..=1.0).contains(&r.overall_delivery_rate));
        prop_assert!((0.0..=1.0).contains(&r.min_bin_rate));
        prop_assert!(r.events_retransmitted >= r.events_recovered);
        prop_assert!(r.receivers_per_event <= nodes as f64);
        for &(_, rate) in &r.series {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
        if kind == Algorithm::no_recovery() {
            prop_assert_eq!(r.gossip_msgs, 0);
        }
    }

    /// Zero loss and no reconfiguration means perfect delivery, for
    /// every algorithm (recovery must never *break* dispatching).
    #[test]
    fn lossless_delivery_is_perfect(
        seed in 0u64..1000,
        nodes in 2usize..30,
        kind in algorithm_strategy(),
    ) {
        let config = ScenarioConfig {
            seed,
            nodes,
            link_error_rate: 0.0,
            publish_rate: 10.0,
            duration: SimTime::from_secs(2),
            warmup: SimTime::from_millis(200),
            cooldown: SimTime::from_millis(500),
            algorithm: kind,
            ..ScenarioConfig::default()
        };
        let r = run_scenario(&config);
        prop_assert!(r.delivery_rate > 0.999, "{} under {}", r.delivery_rate, kind);
    }

    /// Subscription flooding reaches exactly the dispatchers it
    /// should: everyone knows every subscribed pattern, and only
    /// subscribers report local matches.
    #[test]
    fn flooding_is_complete_and_minimal(
        seed in 0u64..1000,
        nodes in 2usize..50,
        pi_max in 1usize..5,
    ) {
        let factory = RngFactory::new(seed);
        let topo = Topology::random_tree(nodes, 4, &mut factory.stream("topology"));
        let space = PatternSpace::paper_default();
        let mut subs_rng = factory.stream("subs");
        let subs: Vec<Vec<PatternId>> = (0..nodes)
            .map(|_| space.random_subscriptions(pi_max, &mut subs_rng))
            .collect();
        let mut dispatchers: Vec<Dispatcher> = topo
            .nodes()
            .map(|id| Dispatcher::new(id, DispatcherConfig::default()))
            .collect();
        install_local_subscriptions(&mut dispatchers, &subs);
        flood_subscriptions(&mut dispatchers, &topo);

        let mut subscribed_anywhere = std::collections::BTreeSet::new();
        for s in &subs {
            subscribed_anywhere.extend(s.iter().copied());
        }
        for (i, d) in dispatchers.iter().enumerate() {
            for &p in &subscribed_anywhere {
                prop_assert!(d.table().knows(p), "node {i} missing {p}");
            }
            for &p in &subs[i] {
                prop_assert!(d.table().has_local(p));
            }
            let locals: Vec<PatternId> = d.table().local_patterns().collect();
            prop_assert_eq!(locals, subs[i].clone());
        }
    }

    /// Any number of reconfigurations keeps the overlay a
    /// degree-bounded tree.
    #[test]
    fn reconfigurations_preserve_tree_invariants(
        seed in 0u64..1000,
        nodes in 2usize..60,
        steps in 1usize..40,
    ) {
        let factory = RngFactory::new(seed);
        let mut topo = Topology::random_tree(nodes, 4, &mut factory.stream("topology"));
        let mut rng = factory.stream("reconfig");
        for _ in 0..steps {
            if let Some(plan) = plan_reconfiguration(&topo, &mut rng) {
                topo.remove_link(plan.broken).unwrap();
                topo.add_link(plan.replacement.0, plan.replacement.1).unwrap();
            }
        }
        prop_assert!(topo.is_tree());
        prop_assert!(topo.nodes().all(|n| topo.degree(n) <= 4));
    }
}
