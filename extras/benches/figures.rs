//! One benchmark per paper figure, running a miniature of that
//! figure's distinctive configuration. The paper-scale regeneration
//! lives in the `repro` binary (`cargo run -p eps-harness --bin repro`);
//! these benches keep every experiment code path exercised and track
//! simulator performance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eps_bench::{mini, mini_reconfig};
use eps_gossip::Algorithm;
use eps_harness::{run_scenario, ScenarioConfig};
use eps_sim::SimTime;

fn fig3a_lossy_links(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3a");
    for kind in [
        Algorithm::no_recovery(),
        Algorithm::push(),
        Algorithm::combined_pull(),
    ] {
        group.bench_function(kind.name(), |b| {
            let config = mini(kind);
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

fn fig3b_reconfigurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3b");
    for (label, rho) in [("rho200ms", 200u64), ("rho30ms", 30)] {
        group.bench_function(label, |b| {
            let config = mini_reconfig(Algorithm::combined_pull(), SimTime::from_millis(rho));
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

fn fig4_buffer_and_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    for beta in [100usize, 1500] {
        group.bench_function(format!("beta{beta}"), |b| {
            let config = ScenarioConfig {
                buffer_size: beta,
                ..mini(Algorithm::combined_pull())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    for t_ms in [10u64, 55] {
        group.bench_function(format!("t{t_ms}ms"), |b| {
            let config = ScenarioConfig {
                gossip_interval: SimTime::from_millis(t_ms),
                ..mini(Algorithm::combined_pull())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

fn fig5_interplay(c: &mut Criterion) {
    c.bench_function("fig5/small_buffer_fast_gossip", |b| {
        let config = ScenarioConfig {
            buffer_size: 500,
            gossip_interval: SimTime::from_millis(10),
            ..mini(Algorithm::combined_pull())
        };
        b.iter(|| run_scenario(black_box(&config)))
    });
}

fn fig6_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for n in [20usize, 60] {
        group.bench_function(format!("n{n}"), |b| {
            let config = ScenarioConfig {
                nodes: n,
                ..mini(Algorithm::push())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

fn fig7_receivers(c: &mut Criterion) {
    c.bench_function("fig7/pi_max10", |b| {
        let config = ScenarioConfig {
            pi_max: 10,
            link_error_rate: 0.0,
            ..mini(Algorithm::no_recovery())
        };
        b.iter(|| run_scenario(black_box(&config)))
    });
}

fn fig8_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for (label, rate) in [("low_load", 5.0), ("high_load", 25.0)] {
        group.bench_function(label, |b| {
            let config = ScenarioConfig {
                pi_max: 10,
                publish_rate: rate,
                buffer_size: 4000,
                ..mini(Algorithm::combined_pull())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

fn fig9_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("push_n40", |b| {
        let config = ScenarioConfig {
            nodes: 40,
            ..mini(Algorithm::push())
        };
        b.iter(|| run_scenario(black_box(&config)))
    });
    group.bench_function("combined_pi_max8", |b| {
        let config = ScenarioConfig {
            pi_max: 8,
            ..mini(Algorithm::combined_pull())
        };
        b.iter(|| run_scenario(black_box(&config)))
    });
    group.finish();
}

fn fig10_error_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    for eps in [0.01, 0.1] {
        group.bench_function(format!("eps{}", (eps * 100.0) as u32), |b| {
            let config = ScenarioConfig {
                link_error_rate: eps,
                ..mini(Algorithm::push())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig3a_lossy_links,
        fig3b_reconfigurations,
        fig4_buffer_and_interval,
        fig5_interplay,
        fig6_scalability,
        fig7_receivers,
        fig8_load,
        fig9_overhead,
        fig10_error_sweep
);
criterion_main!(figures);
