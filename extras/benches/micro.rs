//! Micro-benchmarks of the hot paths: event matching, routing-table
//! lookups, cache operations, loss detection, and the event queue.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use eps_overlay::{NodeId, Topology};
use eps_pubsub::{
    Dispatcher, DispatcherConfig, Event, EventCache, EventId, Interface, LossDetector, PatternId,
    PatternSpace, SubscriptionTable,
};
use eps_sim::{Engine, RngFactory, SimTime};

fn event(seq: u64, patterns: &[u16]) -> Event {
    Event::new(
        EventId::new(NodeId::new(0), seq),
        patterns.iter().map(|&p| (PatternId::new(p), seq)).collect(),
    )
}

fn bench_matching(c: &mut Criterion) {
    let mut table = SubscriptionTable::new();
    let mut rng = RngFactory::new(1).stream("bench");
    let space = PatternSpace::paper_default();
    for n in 0..4u32 {
        for p in space.random_subscriptions(10, &mut rng) {
            table.insert(p, Interface::Neighbor(NodeId::new(n + 1)));
        }
    }
    let e = event(0, &[3, 25, 60]);
    c.bench_function("table/matching_neighbors", |b| {
        b.iter(|| table.matching_neighbors(black_box(&e), Some(NodeId::new(1))))
    });
    c.bench_function("table/matches_locally", |b| {
        b.iter(|| table.matches_locally(black_box(&e)))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/insert_with_eviction", |b| {
        b.iter_batched(
            || EventCache::new(1500),
            |mut cache| {
                for seq in 0..2000u64 {
                    cache.insert(event(seq, &[(seq % 70) as u16]));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    let mut cache = EventCache::new(1500);
    for seq in 0..1500u64 {
        // Patterns must be sorted and distinct: seq % 69 < 69 always.
        cache.insert(event(seq, &[(seq % 69) as u16, 69]));
    }
    c.bench_function("cache/ids_matching", |b| {
        b.iter(|| cache.ids_matching(black_box(PatternId::new(69))))
    });
    c.bench_function("cache/get_by_pattern_seq", |b| {
        b.iter(|| cache.get_by_pattern_seq(NodeId::new(0), PatternId::new(69), black_box(700)))
    });
}

fn bench_detector(c: &mut Criterion) {
    c.bench_function("detector/observe_in_order", |b| {
        b.iter_batched(
            LossDetector::new,
            |mut det| {
                for seq in 0..1000u64 {
                    det.observe(&event(seq, &[1, 2, 3]), |_| true);
                }
                det
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter_batched(
            Engine::<u64>::new,
            |mut engine| {
                for i in 0..10_000u64 {
                    engine.schedule_at(SimTime::from_nanos(i * 7919 % 1_000_000), i);
                }
                while engine.pop().is_some() {}
                engine
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_topology(c: &mut Criterion) {
    c.bench_function("topology/random_tree_100", |b| {
        b.iter_batched(
            || RngFactory::new(7).stream("topology"),
            |mut rng| Topology::random_tree(100, 4, &mut rng),
            BatchSize::SmallInput,
        )
    });
    let topo = Topology::random_tree(100, 4, &mut RngFactory::new(7).stream("topology"));
    c.bench_function("topology/path_lookup", |b| {
        b.iter(|| topo.path(black_box(NodeId::new(3)), black_box(NodeId::new(97))))
    });
}

fn bench_dispatcher(c: &mut Criterion) {
    let mut d = Dispatcher::new(NodeId::new(1), DispatcherConfig::default());
    d.subscribe_local(PatternId::new(1), &[]);
    d.on_subscribe(PatternId::new(2), NodeId::new(2), &[]);
    c.bench_function("dispatcher/on_event", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            d.on_event(event(seq, &[1, 2, 3]), Some(NodeId::new(0)))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_matching,
        bench_cache,
        bench_detector,
        bench_engine,
        bench_topology,
        bench_dispatcher
);
criterion_main!(micro);
