//! Ablation benchmarks: the runtime cost of the design choices the
//! reproduction makes (DESIGN.md §5), each toggled against a baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eps_bench::mini;
use eps_gossip::{Algorithm, GossipConfig};
use eps_harness::{run_scenario, ScenarioConfig};

/// Publisher-based pull pays for route recording in every event
/// message; subscriber pull does not. Comparing the two bounds the
/// cost of the `Routes` machinery.
fn route_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/route_recording");
    group.sample_size(10);
    group.bench_function("with_routes_publisher_pull", |b| {
        let config = mini(Algorithm::publisher_pull());
        b.iter(|| run_scenario(black_box(&config)))
    });
    group.bench_function("without_routes_subscriber_pull", |b| {
        let config = mini(Algorithm::subscriber_pull());
        b.iter(|| run_scenario(black_box(&config)))
    });
    group.finish();
}

/// The negative-digest size cap trades per-message work for more
/// rounds.
fn digest_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/digest_cap");
    group.sample_size(10);
    for cap in [16usize, 128, 1024] {
        group.bench_function(format!("cap{cap}"), |b| {
            let config = ScenarioConfig {
                gossip: GossipConfig {
                    digest_max: cap,
                    ..GossipConfig::default()
                },
                ..mini(Algorithm::combined_pull())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

/// Giving up on hopeless `Lost` entries bounds gossip work; a huge
/// attempt budget shows the cost of never giving up.
fn retry_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/retry_budget");
    group.sample_size(10);
    for attempts in [3u32, 20, 1000] {
        group.bench_function(format!("attempts{attempts}"), |b| {
            let config = ScenarioConfig {
                buffer_size: 100, // starve the caches so entries linger
                gossip: GossipConfig {
                    max_attempts: attempts,
                    ..GossipConfig::default()
                },
                ..mini(Algorithm::combined_pull())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

/// `P_forward` controls gossip fan-out and with it the message count.
fn forward_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/p_forward");
    group.sample_size(10);
    for p in [0.25, 0.5, 1.0] {
        group.bench_function(format!("p{}", (p * 100.0) as u32), |b| {
            let config = ScenarioConfig {
                gossip: GossipConfig {
                    p_forward: p,
                    ..GossipConfig::default()
                },
                ..mini(Algorithm::push())
            };
            b.iter(|| run_scenario(black_box(&config)))
        });
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = route_recording, digest_cap, retry_budget, forward_probability
);
criterion_main!(ablations);
