//! Placeholder library target for the opt-in extras package; the
//! content lives in `tests/` (proptest suites) and `benches/`
//! (criterion benchmarks). See `extras/Cargo.toml` for why this
//! package sits outside the workspace.
