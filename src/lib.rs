//! # epidemic-pubsub
//!
//! A full reproduction of *“Epidemic Algorithms for Reliable
//! Content-Based Publish-Subscribe: An Evaluation”* (P. Costa,
//! M. Migliavacca, G. P. Picco, G. Cugola — ICDCS 2004), built from
//! scratch in Rust.
//!
//! Distributed content-based publish-subscribe systems route events
//! from publishers to subscribers over a tree of dispatchers, matching
//! on event *content* rather than on channels. They are typically best
//! effort: an event lost to a link error or a topology change is gone.
//! The paper evaluates three epidemic (gossip) algorithms that recover
//! such losses — proactive **push** with positive digests, and
//! reactive **subscriber-based** / **publisher-based pull** with
//! negative digests (plus their probabilistic combination and a
//! random-routing comparator) — and shows they raise delivery close to
//! 100 % with bounded overhead.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `eps-sim` | deterministic discrete-event kernel (the OMNeT++ substitute) |
//! | [`overlay`] | `eps-overlay` | degree-bounded tree overlays, lossy links, reconfiguration |
//! | [`pubsub`] | `eps-pubsub` | the best-effort content-based publish-subscribe substrate |
//! | [`gossip`] | `eps-gossip` | the paper's recovery algorithms (the core contribution) |
//! | [`metrics`] | `eps-metrics` | delivery and overhead accounting |
//! | [`harness`] | `eps-harness` | scenario runner and per-figure experiment drivers |
//!
//! # Quickstart
//!
//! ```
//! use epidemic_pubsub::harness::{run_scenario, ScenarioConfig};
//! use epidemic_pubsub::gossip::Algorithm;
//! use epidemic_pubsub::sim::SimTime;
//!
//! // A small lossy network with combined-pull recovery.
//! let config = ScenarioConfig {
//!     nodes: 20,
//!     duration: SimTime::from_secs(3),
//!     warmup: SimTime::from_millis(500),
//!     cooldown: SimTime::from_millis(500),
//!     algorithm: Algorithm::combined_pull(),
//!     ..ScenarioConfig::default()
//! };
//! let result = run_scenario(&config);
//! println!("delivery rate: {:.1}%", result.delivery_rate * 100.0);
//! assert!(result.delivery_rate > 0.5);
//! ```
//!
//! To regenerate every figure of the paper:
//!
//! ```text
//! cargo run --release -p eps-harness --bin repro -- all --quick
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use eps_gossip as gossip;
pub use eps_harness as harness;
pub use eps_metrics as metrics;
pub use eps_overlay as overlay;
pub use eps_pubsub as pubsub;
pub use eps_sim as sim;
